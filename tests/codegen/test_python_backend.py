"""Code-generator tests: emitted Python must agree with the interpreter
on every workload and on random programs (triple differential: unfused
interpreter = compiled unfused = compiled fused)."""

import random

import pytest

from repro.codegen import compile_fused, compile_program, emit_module
from repro.fusion import fuse_program
from repro.runtime import Heap, Interpreter, Node
from repro.runtime.values import ObjectValue

from tests.fixtures import fig1_program, fig2_program
from tests.generators import random_program_source, random_tree


def triple_run(program, build_tree, globals_map=None):
    """Interpreter vs compiled-unfused vs compiled-fused snapshots."""
    heap_a = Heap(program)
    root_a = build_tree(program, heap_a)
    interp = Interpreter(program, heap_a)
    for name, value in (globals_map or {}).items():
        interp.globals[name] = value
    interp.run_entry(root_a)

    compiled = compile_program(program)
    heap_b = Heap(program)
    root_b = build_tree(program, heap_b)
    ctx_b = compiled.run_entry(heap_b, root_b, globals_map)

    fused = fuse_program(program)
    compiled_fused = compile_fused(fused)
    heap_c = Heap(program)
    root_c = build_tree(program, heap_c)
    ctx_c = compiled_fused.run_fused(heap_c, root_c, globals_map)

    snap = root_a.snapshot(program)
    assert snap == root_b.snapshot(program), "compiled unfused diverged"
    assert snap == root_c.snapshot(program), "compiled fused diverged"
    assert interp.globals == ctx_b.globals == ctx_c.globals
    return snap


class TestFixtures:
    def test_fig1(self):
        program = fig1_program()

        def build(p, heap):
            node = Node.new(p, heap, "LeafEnd")
            for i in range(5):
                node = Node.new(p, heap, "Inner", child=node, x=i, y=7 - i)
            return node

        triple_run(program, build)

    def test_fig2(self):
        program = fig2_program()

        def build(p, heap):
            def tb(n, nxt):
                return Node.new(
                    p, heap, "TextBox",
                    Text=ObjectValue("String", {"Length": n}), Next=nxt,
                )

            g = Node.new(p, heap, "Group")
            g.set("Content", tb(5, tb(7, Node.new(p, heap, "End"))))
            g.set("Next", tb(3, Node.new(p, heap, "End")))
            g.get("Border").set("Size", 2)
            return g

        triple_run(program, build, {"CHAR_WIDTH": 2})


class TestWorkloads:
    def test_render(self):
        from repro.workloads.render import (
            build_document, render_program, replicated_pages_spec,
        )
        from repro.workloads.render.schema import DEFAULT_GLOBALS

        program = render_program()
        spec = replicated_pages_spec(3)
        triple_run(
            program, lambda p, h: build_document(p, h, spec), DEFAULT_GLOBALS
        )

    def test_astlang(self):
        from repro.workloads.astlang import ast_program
        from repro.workloads.astlang.programs import replicated_functions

        program = ast_program()
        triple_run(program, lambda p, h: replicated_functions(p, h, 4))

    def test_kdtree(self):
        from repro.workloads.kdtree import (
            EQ1_SCHEDULE, KD_DEFAULT_GLOBALS, build_balanced_tree,
            equation_program,
        )

        program = equation_program(EQ1_SCHEDULE, "cg-eq1")
        triple_run(
            program,
            lambda p, h: build_balanced_tree(p, h, depth=5),
            KD_DEFAULT_GLOBALS,
        )

    def test_fmm(self):
        from repro.workloads.fmm import (
            FMM_DEFAULT_GLOBALS, build_fmm_tree, fmm_program, random_particles,
        )

        program = fmm_program()
        particles = random_particles(128)
        triple_run(
            program,
            lambda p, h: build_fmm_tree(p, h, particles),
            FMM_DEFAULT_GLOBALS,
        )


class TestRandomPrograms:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_triple_differential(self, seed):
        from repro.frontend import parse_program

        source = random_program_source(random.Random(seed))
        program = parse_program(source, name=f"cg{seed}")

        def build(p, heap):
            return random_tree(p, heap, random.Random(seed + 500), max_depth=3)

        triple_run(program, build)


class TestEmission:
    def test_emitted_source_is_valid_python(self):
        source = emit_module(fig2_program())
        compile(source, "<test>", "exec")  # no SyntaxError
        assert "def m_TextBox_computeWidth(RT, this):" in source
        assert "_D_computeWidth" in source

    def test_dispatch_tables_cover_concrete_types(self):
        program = fig2_program()
        source = emit_module(program)
        for type_name in ("TextBox", "Group", "End"):
            assert f"'{type_name}': " in source

    def test_truncation_compiles_to_exception_only_when_needed(self):
        program = fig1_program()
        fused = fuse_program(program)
        from repro.codegen import emit_fused_module

        source = emit_fused_module(fused)
        # fig1 has no returns -> no try/except blocks in units
        assert "except _Trunc" not in source

    def test_compiled_faster_than_interpreter(self):
        """The point of generating code: no metering overhead."""
        import time

        from repro.workloads.astlang import ast_program
        from repro.workloads.astlang.programs import replicated_functions

        program = ast_program()
        compiled = compile_program(program)

        heap_a = Heap(program)
        root_a = replicated_functions(program, heap_a, 30)
        start = time.perf_counter()
        interp = Interpreter(program, heap_a)
        interp.run_entry(root_a)
        interpreted = time.perf_counter() - start

        heap_b = Heap(program)
        root_b = replicated_functions(program, heap_b, 30)
        start = time.perf_counter()
        compiled.run_entry(heap_b, root_b)
        compiled_time = time.perf_counter() - start

        assert root_a.snapshot(program) == root_b.snapshot(program)
        assert compiled_time < interpreted  # generous: any speedup at all
