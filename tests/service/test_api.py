"""Service facade and HTTP front end."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.api import (
    WORKLOADS,
    TraversalService,
    make_server,
)


class TestFacade:
    def test_submit_workload_and_await(self):
        with TraversalService(workers=2, backend="thread") as service:
            request_id = service.submit_workload("render", trees=4, pages=2)
            result = service.result(request_id, timeout=60)
            assert result.ok
            assert len(result.trees) == 4
            state = service.poll(request_id)
            assert state["state"] == "done"
            assert state["trees"] == 4

    def test_unknown_workload_rejected(self):
        with TraversalService(workers=1, backend="inline") as service:
            with pytest.raises(KeyError, match="unknown workload"):
                service.submit_workload("nope")

    def test_unknown_request_id(self):
        with TraversalService(workers=1, backend="inline") as service:
            assert service.poll(999)["state"] == "unknown"
            with pytest.raises(KeyError):
                service.result(999)

    def test_stats_include_store_when_persistent(self, tmp_path):
        with TraversalService(
            workers=1, backend="thread", cache_dir=str(tmp_path)
        ) as service:
            request_id = service.submit_workload("render", trees=2, pages=2)
            service.result(request_id, timeout=60)
            stats = service.stats()
        assert stats["executor"]["completed_trees"] == 2
        assert stats["store"]["spills"] == 1
        assert "render" in stats["workloads"]

    def test_registry_entries_are_described(self):
        for name, spec in WORKLOADS.items():
            assert spec.name == name
            assert spec.description


class _Client:
    def __init__(self, port):
        self.base = f"http://127.0.0.1:{port}"

    def get(self, path):
        try:
            with urllib.request.urlopen(
                self.base + path, timeout=10
            ) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def post(self, path, payload=None):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload or {}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


@pytest.fixture()
def http_service():
    service = TraversalService(workers=2, backend="thread")
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield _Client(server.server_address[1])
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)


class TestHTTP:
    def test_healthz(self, http_service):
        assert http_service.get("/healthz") == (200, {"ok": True})

    def test_submit_poll_stats_roundtrip(self, http_service):
        status, submitted = http_service.post(
            "/submit", {"workload": "render", "trees": 5, "pages": 2}
        )
        assert status == 200
        request_id = submitted["request_id"]
        for _ in range(200):
            status, state = http_service.get(f"/result/{request_id}")
            if state["state"] != "pending":
                break
        assert state["state"] == "done"
        assert state["trees"] == 5
        assert len(state["summaries"]) == 3  # truncated preview
        status, stats = http_service.get("/stats")
        assert status == 200
        assert stats["executor"]["completed_trees"] >= 5
        assert stats["executor"]["tree_latency"]["p99"] > 0

    def test_bad_submissions_are_400(self, http_service):
        status, body = http_service.post("/submit", {"workload": "nope"})
        assert status == 400
        assert "unknown workload" in body["error"]
        status, _ = http_service.post("/submit", {"trees": 3})
        assert status == 400

    def test_unknown_routes_are_404(self, http_service):
        status, _ = http_service.get("/nope")
        assert status == 404
        status, _ = http_service.post("/nope")
        assert status == 404

    def test_bad_result_id_is_400(self, http_service):
        status, _ = http_service.get("/result/xyz")
        assert status == 400


class TestTicketRetention:
    def test_completed_tickets_age_out_beyond_the_cap(self):
        with TraversalService(
            workers=1, backend="thread", max_tickets=2
        ) as service:
            first = service.submit_workload("render", trees=1, pages=1)
            service.result(first, timeout=60)
            second = service.submit_workload("render", trees=1, pages=1)
            service.result(second, timeout=60)
            third = service.submit_workload("render", trees=1, pages=1)
            service.result(third, timeout=60)
            # the oldest completed ticket was evicted to admit the third
            assert service.poll(first)["state"] == "unknown"
            assert service.poll(third)["state"] == "done"
