"""The ``repro serve`` CLI end to end, via the CI smoke script.

Runs the exact script CI uses (scripts/serve_smoke.py): start the
server subprocess, submit a render batch over HTTP, assert the stats
endpoint reports the completions, shut down cleanly — twice when
persistence is involved, so the second pass exercises a warm store.
"""

import os
import subprocess
import sys

REPO = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)
SCRIPT = os.path.join(REPO, "scripts", "serve_smoke.py")


def run_smoke(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.run(
        [sys.executable, SCRIPT, *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=REPO,
    )


def test_serve_smoke():
    proc = run_smoke()
    assert proc.returncode == 0, proc.stderr or proc.stdout
    assert "serve_smoke: OK" in proc.stdout


def test_serve_smoke_with_persistent_store(tmp_path):
    store = str(tmp_path / "artifacts")
    first = run_smoke(store)
    assert first.returncode == 0, first.stderr or first.stdout
    assert "spills=1" in first.stdout
    # second server process starts warm from the store the first left
    second = run_smoke(store)
    assert second.returncode == 0, second.stderr or second.stdout
    assert "loads=1" in second.stdout
