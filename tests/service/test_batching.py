"""Request grouping by compiled artifact and forest sharding."""

from repro.pipeline import CompileOptions
from repro.service.batching import (
    ExecRequest,
    group_requests,
    shard_group,
    shard_indexes,
)

from tests.fixtures import FIG1_SOURCE, FIG2_SOURCE


def _noop_build(program, heap, spec):  # pragma: no cover - never run here
    raise AssertionError("batching tests do not execute trees")


def request(source=FIG2_SOURCE, trees=4, **kw):
    return ExecRequest(
        source=source,
        trees=list(range(trees)),
        build_tree=_noop_build,
        **kw,
    )


class TestGrouping:
    def test_same_source_and_options_share_a_group(self):
        groups = group_requests([request(), request(), request()])
        assert len(groups) == 1
        assert len(groups[0].requests) == 3
        assert groups[0].tree_count == 12

    def test_different_source_splits(self):
        groups = group_requests([request(FIG2_SOURCE), request(FIG1_SOURCE)])
        assert len(groups) == 2

    def test_different_options_split(self):
        groups = group_requests(
            [
                request(),
                request(options=CompileOptions(mode="treefuser")),
            ]
        )
        assert len(groups) == 2

    def test_different_impls_split(self):
        # two requests for the same text with different bound impls
        # must not share an artifact (the impls are baked in)
        groups = group_requests(
            [
                request(pure_impls={"f": lambda x: x}),
                request(pure_impls={"f": lambda x: -x}),
            ]
        )
        assert len(groups) == 2

    def test_group_key_is_the_cache_key(self):
        req = request()
        [group] = group_requests([req])
        assert group.key == req.compile_key()

    def test_request_ids_are_unique(self):
        ids = {request().request_id for _ in range(10)}
        assert len(ids) == 10


class TestSharding:
    def test_shards_partition_the_range(self):
        for count in (1, 2, 7, 16, 64):
            for shards in (1, 2, 3, 8, 100):
                parts = shard_indexes(count, shards)
                flat = [i for part in parts for i in part]
                assert flat == list(range(count))
                assert len(parts) <= max(1, min(shards, count))
                sizes = [len(p) for p in parts]
                assert max(sizes) - min(sizes) <= 1  # near-equal blocks

    def test_shard_group_scales_with_workers(self):
        [group] = group_requests([request(trees=16)])
        shards = shard_group(group, workers=2, shards_per_worker=2)
        assert len(shards) == 4
        assert sorted(i for s in shards for i in s.indexes) == list(range(16))

    def test_empty_forest_produces_no_shards(self):
        [group] = group_requests([request(trees=0)])
        assert shard_group(group, workers=4) == []

    def test_multiple_requests_shard_independently(self):
        [group] = group_requests([request(trees=6), request(trees=3)])
        shards = shard_group(group, workers=1, shards_per_worker=1)
        assert len(shards) == 2
        by_request = {s.request.request_id: s.indexes for s in shards}
        assert sorted(len(v) for v in by_request.values()) == [3, 6]
