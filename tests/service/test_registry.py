"""The expanded workload registry: all four case studies are servable."""

import json
import urllib.request

from repro.service.api import WORKLOADS, TraversalService, make_server


class TestRegistry:
    def test_all_four_case_studies_registered(self):
        assert {"render", "astlang", "kdtree", "fmm"} <= set(WORKLOADS)
        for spec in WORKLOADS.values():
            assert spec.description
            assert spec.size_kwarg

    def test_registry_descriptions_match_the_bundles(self):
        # the registry duplicates each factory's description so that
        # importing the registry stays cheap; this pins the two copies
        # together so they cannot drift
        for spec in WORKLOADS.values():
            assert spec.description == spec.workload().description

    def test_workload_bundles_are_memoized(self):
        spec = WORKLOADS["kdtree"]
        assert spec.workload() is spec.workload()

    def test_kdtree_runs_through_the_service(self):
        with TraversalService(workers=1, backend="inline") as service:
            request_id = service.submit_workload(
                "kdtree", trees=2, depth=2
            )
            result = service.result(request_id, timeout=120)
        assert result.ok
        assert len(result.trees) == 2

    def test_fmm_runs_through_the_service(self):
        with TraversalService(workers=1, backend="inline") as service:
            request_id = service.submit_workload(
                "fmm", trees=2, particles=16
            )
            result = service.result(request_id, timeout=120)
        assert result.ok
        assert len(result.trees) == 2

    def test_astlang_runs_through_the_service(self):
        with TraversalService(workers=1, backend="inline") as service:
            request_id = service.submit_workload(
                "astlang", trees=1, functions=2
            )
            result = service.result(request_id, timeout=120)
        assert result.ok

    def test_generic_size_knob(self):
        # `size` maps onto each workload's own vocabulary, so generic
        # callers (the CLI's --size, dashboards) need no per-workload
        # knowledge
        request = WORKLOADS["kdtree"].make_request(trees=1, size=2)
        assert request.trees[0][0] == 2
        request = WORKLOADS["fmm"].make_request(trees=1, size=8)
        assert len(request.trees[0]) == 8

    def test_http_submit_new_workloads(self):
        with TraversalService(workers=1, backend="thread") as service:
            server = make_server(service, port=0)
            host, port = server.server_address[:2]
            base = f"http://{host}:{port}"
            import threading

            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            try:
                body = json.dumps(
                    {"workload": "kdtree", "trees": 1, "depth": 2}
                ).encode()
                with urllib.request.urlopen(
                    urllib.request.Request(
                        base + "/submit",
                        data=body,
                        headers={"Content-Type": "application/json"},
                    ),
                    timeout=30,
                ) as resp:
                    request_id = json.loads(resp.read())["request_id"]
                assert service.result(request_id, timeout=120).ok
            finally:
                server.shutdown()
                server.server_close()
