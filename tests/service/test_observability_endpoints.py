"""Service observability surfaces: /stats identity fields, the
Prometheus /metrics exposition, and per-request /trace lookup."""

import json
import threading
import urllib.error
import urllib.request

import pytest

import repro
from repro import obs
from repro.service.api import TraversalService, make_server


@pytest.fixture
def service():
    svc = TraversalService(workers=1, backend="inline")
    try:
        yield svc
    finally:
        svc.close()


@pytest.fixture
def server(service):
    srv = make_server(service, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        srv.shutdown()
        srv.server_close()


def get(base, path):
    return urllib.request.urlopen(base + path, timeout=30)


def post(base, path, doc):
    request = urllib.request.Request(
        base + path, data=json.dumps(doc).encode(), method="POST"
    )
    return json.loads(
        urllib.request.urlopen(request, timeout=30).read().decode()
    )


class TestStatsIdentity:
    def test_stats_pins_version_uptime_and_request_count(self, service):
        stats = service.stats()
        assert stats["version"] == repro.__version__
        assert stats["uptime_seconds"] >= 0.0
        assert stats["requests_total"] == 0
        # the legacy keys all survive alongside the new identity block
        for key in (
            "executor", "compile_cache", "workloads", "layouts",
            "store", "storage",
        ):
            assert key in stats

    def test_requests_total_is_monotonic(self, service):
        spec_submit = lambda: service.submit_workload(
            "kdtree", trees=1, size=2
        )
        rid = spec_submit()
        service.result(rid, timeout=60)
        assert service.stats()["requests_total"] == 1
        rid = spec_submit()
        service.result(rid, timeout=60)
        assert service.stats()["requests_total"] == 2

    def test_http_stats_carries_identity(self, server):
        stats = json.loads(get(server, "/stats").read().decode())
        assert stats["version"] == repro.__version__
        assert stats["requests_total"] == 0
        assert stats["uptime_seconds"] >= 0.0


class TestMetricsEndpoint:
    def test_metrics_text_parses_and_names_subsystems(self, server):
        response = get(server, "/metrics")
        assert response.headers["Content-Type"].startswith(
            "text/plain"
        )
        text = response.read().decode()
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            float(value)  # every sample line ends in a number
        assert "# TYPE repro_pass_seconds histogram" in text
        assert "# TYPE repro_storage_lookups_total counter" in text
        assert "repro_service_requests_total" in text
        assert "repro_service_uptime_seconds" in text
        # the legacy compile-cache stats() surface as a view
        assert "repro_cache_" in text

    def test_metrics_reflect_executed_work(self, service):
        rid = service.submit_workload("kdtree", trees=2, size=2)
        service.result(rid, timeout=60)
        text = service.metrics_text()
        sample = next(
            line for line in text.splitlines()
            if line.startswith("repro_exec_trees_total")
        )
        assert float(sample.rsplit(" ", 1)[1]) >= 2


class TestTraceEndpoint:
    def test_submit_returns_trace_id_and_spans_serve(self, server):
        obs.enable()
        try:
            reply = post(
                server, "/submit",
                {"workload": "kdtree", "trees": 2, "size": 2},
            )
            assert reply["trace_id"]
            # wait for completion so the request's spans are buffered
            done = json.loads(
                get(server, f"/result/{reply['request_id']}")
                .read().decode()
            )
            while done["state"] == "pending":
                done = json.loads(
                    get(server, f"/result/{reply['request_id']}")
                    .read().decode()
                )
            assert done["state"] == "done"
            assert done["trace_id"] == reply["trace_id"]
            trace = json.loads(
                get(server, f"/trace/{reply['trace_id']}")
                .read().decode()
            )
            names = {s["name"] for s in trace["spans"]}
            assert "service.submit" in names
            assert "exec.shard" in names
        finally:
            obs.disable()

    def test_unknown_trace_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as failure:
            get(server, "/trace/deadbeef00000000")
        assert failure.value.code == 404

    def test_untraced_submit_has_null_trace_id(self, server):
        # process tracer off: no trace is minted, the field is null
        reply = post(
            server, "/submit",
            {"workload": "kdtree", "trees": 1, "size": 2},
        )
        assert reply["trace_id"] is None
