"""Trace propagation across the executor's pool boundaries: the span
context rides the ExecRequest, shards reparent under it in the worker
(thread, inline, or a separate process), and worker-recorded spans
ship home inside the ShardRun."""

import pickle

import pytest

from repro import obs
from repro.service.api import WORKLOADS
from repro.service.executor import BatchExecutor, _execute_shard
from repro.service.batching import Shard, shard_group, group_requests


def run_traced(backend: str, workers: int = 2, trees: int = 4):
    """Execute one request under a forced root span; returns the
    trace's spans."""
    spec = WORKLOADS["kdtree"]
    with BatchExecutor(workers=workers, backend=backend) as executor:
        with obs.span("test.root", force=True) as root:
            trace_id = root.trace_id
            request = spec.make_request(trees=trees, size=3)
            request.trace_context = root.context
            results = executor.run([request])
    assert results[0].ok, results[0].error
    return obs.get_tracer().spans(trace_id), results[0]


@pytest.mark.parametrize("backend", ["inline", "thread", "process"])
def test_shard_spans_join_the_submitting_trace(backend):
    spans, result = run_traced(backend)
    names = {record["name"] for record in spans}
    assert "exec.group" in names
    assert "exec.shard" in names
    shard_spans = [r for r in spans if r["name"] == "exec.shard"]
    assert sum(r["attrs"]["trees"] for r in shard_spans) == len(
        result.trees
    )
    # one trace, fully connected: every parent resolves in-trace
    ids = {record["span_id"] for record in spans}
    for record in spans:
        if record["parent_id"] is not None:
            assert record["parent_id"] in ids


def test_process_shards_record_in_worker_processes():
    import os

    spans, _ = run_traced("process")
    shard_pids = {
        r["pid"] for r in spans if r["name"] == "exec.shard"
    }
    # the spans were recorded in pool workers, not the parent — yet
    # they reached the parent's ring via the ShardRun span bucket
    assert shard_pids and os.getpid() not in shard_pids
    group = next(r for r in spans if r["name"] == "exec.group")
    assert group["pid"] == os.getpid()
    # shards parent to the *request's* own span (test.root rode in on
    # request.trace_context), so multi-request groups attribute each
    # shard to the right submitter
    root = next(r for r in spans if r["name"] == "test.root")
    for record in spans:
        if record["name"] == "exec.shard":
            assert record["parent_id"] == root["span_id"]


def test_group_span_records_compile_outcome_and_shape():
    spans, _ = run_traced("inline", workers=1)
    group = next(r for r in spans if r["name"] == "exec.group")
    assert group["attrs"]["requests"] == 1
    assert group["attrs"]["trees"] == 4
    assert group["attrs"]["shards"] >= 1
    assert "compile_cache_hit" in group["attrs"]


def test_shard_run_payload_pickles_with_spans():
    """The exact object the process pool returns — results plus the
    span bucket — must survive pickling."""
    spec = WORKLOADS["kdtree"]
    request = spec.make_request(trees=2, size=2)
    with obs.span("test.root", force=True) as root:
        ctx = root.context
    outcome = _execute_shard(request, [0, 1], pickle.loads(
        pickle.dumps(ctx)
    ))
    wire = pickle.loads(pickle.dumps(outcome))
    assert len(wire.trees) == 2
    assert wire.spans, "worker-side spans travel with the result"
    assert all(s["trace_id"] == root.trace_id for s in wire.spans)
    shard = next(s for s in wire.spans if s["name"] == "exec.shard")
    assert shard["parent_id"] == root.span_id


def test_untraced_shard_collects_nothing():
    spec = WORKLOADS["kdtree"]
    request = spec.make_request(trees=1, size=2)
    outcome = _execute_shard(request, [0], None)
    assert outcome.spans is None
    assert len(outcome.trees) == 1


def test_submit_captures_ambient_context():
    spec = WORKLOADS["kdtree"]
    with BatchExecutor(workers=1, backend="inline") as executor:
        with obs.span("submitter", force=True) as root:
            ticket = executor.submit(spec.make_request(trees=1, size=2))
        result = ticket.result(timeout=60)
    assert result.ok, result.error
    spans = obs.get_tracer().spans(root.trace_id)
    names = {record["name"] for record in spans}
    # the dispatcher thread ran the wave, yet the group span reparented
    # under the submitter's trace via the captured context
    assert "exec.group" in names
    assert "exec.shard" in names
