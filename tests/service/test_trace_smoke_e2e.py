"""The observability layer end to end, via the CI smoke script.

Runs the exact script CI uses (scripts/trace_smoke.py): a traced
compile + execution, the Chrome trace export loads as JSON, the span
tree covers pass -> tier -> exec under one trace id, and the
Prometheus exposition parses.
"""

import os
import subprocess
import sys

REPO = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)
SCRIPT = os.path.join(REPO, "scripts", "trace_smoke.py")


def test_trace_smoke():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [sys.executable, SCRIPT],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stderr or proc.stdout
    assert "trace_smoke: OK" in proc.stdout
