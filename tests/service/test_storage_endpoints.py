"""The service's storage endpoints: /artifact, /gc, /recompile.

The ``/artifact`` routes are what turn a running ``repro serve`` into a
:class:`~repro.storage.PeerTier` for other hosts, so they are tested
both raw (byte-identical to the stored file) and end to end (a compile
in this process going warm through the live server).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.pipeline import CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.service.api import TraversalService, make_server
from repro.service.store import store_for
from repro.storage import MemoryTier, PeerTier, ResultKey

from tests.fixtures import FIG2_SOURCE


@pytest.fixture()
def persistent_service(tmp_path):
    """A live HTTP service over a store pre-populated with one FIG2
    compile; yields (client base url, seeded result, store)."""
    cache_dir = str(tmp_path / "store")
    seeded = pipeline_compile(
        FIG2_SOURCE,
        options=CompileOptions(cache_dir=cache_dir),
        cache=MemoryTier(),
    )
    service = TraversalService(
        workers=1, backend="thread", cache_dir=cache_dir
    )
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield base, seeded, store_for(cache_dir)
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestArtifactEndpoint:
    def test_result_bytes_are_byte_identical_to_the_stored_file(
        self, persistent_service
    ):
        base, seeded, store = persistent_service
        output_hash = seeded.options.output_hash()
        status, body = _get(
            f"{base}/artifact/result/{seeded.source_hash}/{output_hash}"
        )
        assert status == 200
        assert body == store.path_for(
            seeded.source_hash, output_hash
        ).read_bytes()

    def test_unit_bytes_round_trip(self, persistent_service):
        base, seeded, store = persistent_service
        unit_file = next(store.dir.glob("units/fusion/*/*.pkl"))
        status, body = _get(
            f"{base}/artifact/unit/fusion/{unit_file.stem}"
        )
        assert status == 200
        assert body == unit_file.read_bytes()

    def test_missing_and_malformed_keys_are_404(self, persistent_service):
        base, _, _ = persistent_service
        status, _ = _get(f"{base}/artifact/result/{'0' * 64}/{'1' * 64}")
        assert status == 404
        # traversal-shaped keys never reach the filesystem
        status, _ = _get(f"{base}/artifact/unit/..%2f..%2fetc/passwd")
        assert status == 404
        status, _ = _get(f"{base}/artifact/result/short/keys")
        assert status == 404

    def test_live_server_serves_as_a_peer_tier(self, persistent_service):
        base, seeded, _ = persistent_service
        peer = PeerTier(base)
        key = ResultKey.of(seeded.source_hash, seeded.options)
        fetched = peer.get_result(key)
        assert fetched is not None
        assert fetched.fused_source == seeded.fused_source
        assert peer.hits == 1

    def test_cross_host_compile_goes_warm_through_http(
        self, persistent_service, tmp_path
    ):
        base, seeded, _ = persistent_service
        # "another host": fresh memory tier, its own empty store, the
        # server as its only peer
        warm = pipeline_compile(
            FIG2_SOURCE,
            options=CompileOptions(
                cache_dir=str(tmp_path / "other-host"), peers=(base,)
            ),
            cache=MemoryTier(),
        )
        assert warm.cache_hit
        assert warm.fused_source == seeded.fused_source


class TestGCEndpoint:
    def test_pass_scoped_gc_over_http(self, persistent_service):
        base, _, store = persistent_service
        assert list(store.dir.glob("units/fusion/*/*.pkl"))
        status, summary = _post(f"{base}/gc", {"pass": "fusion"})
        assert status == 200
        assert summary["total"]["removed"] > 0
        assert not list(store.dir.glob("units/fusion/*/*.pkl"))
        # other passes' units survived
        assert list(store.dir.glob("units/emit/*/*.pkl"))

    def test_bare_gc_is_400(self, persistent_service):
        base, _, _ = persistent_service
        status, body = _post(f"{base}/gc", {})
        assert status == 400
        assert "gc needs" in body["error"]

    def test_traversal_shaped_pass_is_400_and_deletes_nothing(
        self, persistent_service
    ):
        base, _, store = persistent_service
        before = store.stats()["unit_entries"] + store.stats()["entries"]
        status, body = _post(
            f"{base}/gc", {"pass": "../../../../etc"}
        )
        assert status == 400
        assert "invalid pass name" in body["error"]
        after = store.stats()["unit_entries"] + store.stats()["entries"]
        assert after == before


class TestRecompileEndpoint:
    def test_returns_unit_report_json(self, persistent_service):
        base, _, _ = persistent_service
        status, body = _post(
            f"{base}/recompile", {"workload": "render"}
        )
        assert status == 200
        assert body["workload"] == "render"
        assert not body["cache_hit"]  # whole-result cache was bypassed
        for pass_name in ("access-analysis", "dependence", "fusion", "emit"):
            assert pass_name in body["passes"]
            assert pass_name in body["unit_report"]
        fusion = body["passes"]["fusion"]
        assert fusion["units"] == fusion["hits"] + fusion["misses"]

    def test_second_recompile_reports_all_hits(self, persistent_service):
        base, _, _ = persistent_service
        _post(f"{base}/recompile", {"workload": "render"})
        status, body = _post(
            f"{base}/recompile", {"workload": "render"}
        )
        assert status == 200
        # every unit was just published: the rebuild reuses all of them
        assert body["passes"]["fusion"]["misses"] == 0
        assert body["passes"]["emit"]["misses"] == 0

    def test_unknown_workload_is_400(self, persistent_service):
        base, _, _ = persistent_service
        status, body = _post(f"{base}/recompile", {"workload": "nope"})
        assert status == 400
        assert "unknown workload" in body["error"]

    def test_option_overrides_are_rejected_over_http(
        self, persistent_service, tmp_path
    ):
        # CompileOptions patches (cache_dir: write anywhere; peers:
        # server-side fetches of arbitrary URLs) must not be reachable
        # from the network
        base, _, _ = persistent_service
        target = str(tmp_path / "attacker-chosen")
        status, body = _post(
            f"{base}/recompile",
            {"workload": "render", "cache_dir": target},
        )
        assert status == 400
        assert "unsupported fields" in body["error"]
        import os

        assert not os.path.exists(target)
