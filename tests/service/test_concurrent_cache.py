"""Concurrent access to the compile cache and the on-disk store.

Two dimensions, per the PR checklist:

* **threads** — the executor's thread backend funnels shards through
  one shared ``CompileCache``; racing compiles of the same program must
  not corrupt it and every racer must get a usable artifact.
* **processes** — two processes spilling the same key into one store
  directory must both succeed (atomic rename: a reader can never see a
  torn file) and both end up with runnable artifacts.
"""

import os
import subprocess
import sys
import textwrap
from concurrent.futures import ThreadPoolExecutor

from repro.pipeline import CompileCache, CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.service.store import store_for

from tests.fixtures import FIG2_SOURCE


class TestThreadedAccess:
    def test_racing_compiles_share_the_store_without_corruption(
        self, tmp_path
    ):
        cache = CompileCache()
        options = CompileOptions(cache_dir=str(tmp_path))

        def compile_once(_):
            return pipeline_compile(
                FIG2_SOURCE, options=options, cache=cache
            )

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(compile_once, range(16)))

        # every thread got a complete, runnable record
        assert all(r.fused is not None for r in results)
        assert all(r.compiled_fused is not None for r in results)
        assert len({r.source_hash for r in results}) == 1
        # the store holds exactly the one artifact, and it loads
        store = store_for(str(tmp_path))
        assert len(store) == 1
        reloaded = store.load(
            results[0].source_hash, results[0].options.output_hash()
        )
        assert reloaded is not None
        assert reloaded.fused_source == results[0].fused_source

    def test_racing_spills_of_one_result_are_atomic(self, tmp_path):
        cache = CompileCache()
        result = pipeline_compile(
            FIG2_SOURCE,
            options=CompileOptions(cache_dir=str(tmp_path)),
            cache=cache,
        )
        store = store_for(str(tmp_path))

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(
                pool.map(lambda _: store.spill(result), range(32))
            )
        assert all(outcomes)
        assert len(store) == 1  # last writer wins, no tmp debris
        leftovers = [
            p for p in store.dir.rglob("*") if p.name.startswith(".spill-")
        ]
        assert leftovers == []
        assert store.load(result.source_hash, result.options.output_hash()) is not None


_CHILD = textwrap.dedent(
    """
    import sys
    from repro.pipeline import CompileCache, CompileOptions
    from repro.pipeline import compile as pipeline_compile
    from repro.workloads.render import (
        DEFAULT_GLOBALS, RENDER_PURE_IMPLS, RENDER_SOURCE,
        build_document, replicated_pages_spec,
    )
    from repro.runtime import Heap

    result = pipeline_compile(
        RENDER_SOURCE,
        options=CompileOptions(cache_dir=sys.argv[1]),
        cache=CompileCache(),
        pure_impls=RENDER_PURE_IMPLS,
    )
    heap = Heap(result.program)
    root = build_document(result.program, heap, replicated_pages_spec(2))
    result.compiled_fused.run_fused(heap, root, DEFAULT_GLOBALS)
    assert root.snapshot(result.program)
    print("ok", result.cache_hit)
    """
)


class TestCrossProcessAccess:
    def test_two_processes_race_one_store(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        children = [
            subprocess.Popen(
                [sys.executable, "-c", _CHILD, str(tmp_path)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            for _ in range(2)
        ]
        outputs = [child.communicate(timeout=120) for child in children]
        for child, (out, err) in zip(children, outputs):
            assert child.returncode == 0, err
            assert out.startswith("ok"), out
        # both racers left exactly one complete artifact behind, and a
        # third process-equivalent (fresh cache) loads and runs it
        store = store_for(str(tmp_path))
        assert len(store) == 1
        result = pipeline_compile(
            _render_key_source(),
            options=CompileOptions(cache_dir=str(tmp_path)),
            cache=CompileCache(),
            pure_impls=_render_impls(),
        )
        assert result.cache_hit


def _render_key_source():
    from repro.workloads.render import RENDER_SOURCE

    return RENDER_SOURCE


def _render_impls():
    from repro.workloads.render import RENDER_PURE_IMPLS

    return RENDER_PURE_IMPLS
