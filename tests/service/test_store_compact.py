"""Artifact-store compaction and its /stats surfacing."""

import pickle

from repro.service.store import ArtifactStore
from repro.pipeline import CompileOptions
from repro.pipeline import compile as pipeline_compile

SOURCE = """
_tree_ class N {
    _child_ N* kid;
    int x = 0;
    _traversal_ void go() { this->x = 1; this->kid->go(); }
};
int main() { N* root = ...; root->go(); }
"""


def spill_one(store_dir):
    # use_cache must stay on: disabling it bypasses the disk layer too
    return pipeline_compile(
        SOURCE, options=CompileOptions(cache_dir=str(store_dir))
    )


class TestCompact:
    def test_drops_foreign_versions_and_tmp_files(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        spill_one(tmp_path)
        assert len(store) == 1
        # a crashed writer's dropping (backdated past the grace window
        # that protects live mid-spill temp files) and an entry from
        # another version
        import os
        import time

        # a *result* bucket (two hex chars), not the units/ subtree
        bucket = next(
            p for p in store.dir.glob("*") if p.name != "units"
        )
        dead = bucket / ".spill-dead.tmp"
        dead.write_bytes(b"half a spill")
        stale = time.time() - 3600
        os.utime(dead, (stale, stale))
        foreign = bucket / ("f" * 64 + "-" + "0" * 8 + ".pkl")
        foreign.write_bytes(
            pickle.dumps(
                {"format": 1, "repro": "0.0.0-other", "result": None}
            )
        )
        corrupt = bucket / ("c" * 64 + "-" + "1" * 8 + ".pkl")
        corrupt.write_bytes(b"not a pickle")

        summary = store.compact()
        assert summary["removed"] == 3
        assert summary["reclaimed_bytes"] > 0
        # the current-version entry survives and still loads
        assert len(store) == 1
        stats = store.stats()
        assert stats["compactions"] == 1
        assert stats["compacted_entries"] == 3

    def test_drops_foreign_format_version_trees(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        old_tree = tmp_path / "v0" / "ab"
        old_tree.mkdir(parents=True)
        (old_tree / ("a" * 64 + "-" + "2" * 8 + ".pkl")).write_bytes(
            b"an entry no current load ever reads"
        )
        summary = store.compact()
        assert summary["removed"] == 1
        assert not (tmp_path / "v0").exists()
        assert store.dir.exists()  # the live tree is untouched

    def test_spares_fresh_tmp_files_of_live_writers(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        bucket = store.dir / "ab"
        bucket.mkdir()
        fresh = bucket / ".spill-live.tmp"
        fresh.write_bytes(b"a writer between mkstemp and os.replace")
        assert store.compact()["removed"] == 0
        assert fresh.exists()

    def test_compact_on_empty_store_is_a_noop(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.compact() == {"removed": 0, "reclaimed_bytes": 0}

    def test_counters_reach_service_stats(self, tmp_path):
        from repro.service.api import TraversalService

        with TraversalService(
            workers=1, backend="inline", cache_dir=str(tmp_path)
        ) as service:
            request_id = service.submit_workload(
                "render", trees=1, pages=1
            )
            service.result(request_id, timeout=120)
            service.compact_store()
            stats = service.stats()
        store_stats = stats["store"]
        assert store_stats["compactions"] == 1
        assert "evictions" in store_stats
        assert "compacted_bytes" in store_stats

    def test_stats_store_key_present_without_store(self):
        from repro.service.api import TraversalService

        with TraversalService(workers=1, backend="inline") as service:
            stats = service.stats()
        assert stats["store"] is None
        assert service.compact_store() == {
            "removed": 0,
            "reclaimed_bytes": 0,
        }
