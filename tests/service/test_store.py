"""Persistent artifact store: layout, round trips, eviction, damage."""

import os
import pickle

from repro.pipeline import CompileCache, CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.service.store import FORMAT_VERSION, ArtifactStore, store_for

from tests.fixtures import FIG1_SOURCE, FIG2_SOURCE


def _compile_into(tmp_path, source=FIG2_SOURCE, **options_kw):
    options = CompileOptions(cache_dir=str(tmp_path), **options_kw)
    return pipeline_compile(source, options=options, cache=CompileCache())


class TestRoundTrip:
    def test_cold_compile_spills_and_new_cache_loads(self, tmp_path):
        cold = _compile_into(tmp_path)
        assert not cold.cache_hit
        store = store_for(str(tmp_path))
        assert len(store) == 1
        # a brand-new memory cache (standing in for a new process)
        # serves the same compile from disk
        warm = _compile_into(tmp_path)
        assert warm.cache_hit
        assert warm.fused is not cold.fused  # deserialized, not shared
        assert warm.source_hash == cold.source_hash

    def test_restored_artifact_executes(self, tmp_path):
        from repro.runtime import Heap, Node
        from repro.runtime.values import ObjectValue

        cold = _compile_into(tmp_path)
        warm = _compile_into(tmp_path)
        assert warm.cache_hit

        # run both the cold and the disk-restored fused modules on the
        # same input and compare final trees (the restored module execs
        # its namespace lazily on this first run)
        def run(result):
            p = result.program
            heap = Heap(p)

            def tb(n, nxt):
                return Node.new(
                    p, heap, "TextBox",
                    Text=ObjectValue("String", {"Length": n}), Next=nxt,
                )

            root = tb(5, tb(7, Node.new(p, heap, "End")))
            result.compiled_fused.run_fused(heap, root, {"CHAR_WIDTH": 2})
            return root.snapshot(p)

        assert run(warm) == run(cold)

    def test_layout_is_versioned_and_hash_sharded(self, tmp_path):
        result = _compile_into(tmp_path)
        store = store_for(str(tmp_path))
        path = store.path_for(result.source_hash, result.options.output_hash())
        assert path.exists()
        assert path.parent.parent.name == f"v{FORMAT_VERSION}"
        assert path.parent.name == result.source_hash[:2]
        assert path.name.endswith(f"-{result.options.output_hash()}.pkl")

    def test_persist_false_is_read_only(self, tmp_path):
        result = _compile_into(tmp_path, persist=False)
        assert not result.cache_hit
        assert len(store_for(str(tmp_path))) == 0

    def test_non_portable_impls_never_spill(self, tmp_path):
        source = """
        _pure_ int f(int x);
        _tree_ class N {
            _child_ N* kid;
            int v = 0;
            _traversal_ virtual void go() { this->v = f(this->v); }
        };
        _tree_ class L : public N { };
        int main() { N* root = ...; root->go(); }
        """
        options = CompileOptions(cache_dir=str(tmp_path))
        result = pipeline_compile(
            source,
            options=options,
            cache=CompileCache(),
            pure_impls={"f": lambda x: x + 1},  # id()-keyed: not portable
        )
        assert not result.cache_hit
        store = store_for(str(tmp_path))
        assert len(store) == 0
        assert store.spill_skips >= 1


class TestDamageTolerance:
    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        result = _compile_into(tmp_path)
        store = store_for(str(tmp_path))
        path = store.path_for(result.source_hash, result.options.output_hash())
        path.write_bytes(b"not a pickle")
        assert store.load(result.source_hash, result.options.output_hash()) is None
        assert not path.exists()
        assert store.load_errors == 1

    def test_foreign_format_is_a_miss_and_removed(self, tmp_path):
        result = _compile_into(tmp_path)
        store = store_for(str(tmp_path))
        path = store.path_for(result.source_hash, result.options.output_hash())
        path.write_bytes(
            pickle.dumps({"format": FORMAT_VERSION + 1, "result": None})
        )
        assert store.load(result.source_hash, result.options.output_hash()) is None
        assert not path.exists()

    def test_missing_entry_is_a_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.load("0" * 64, "1" * 64) is None
        assert store.load_misses == 1


class TestEviction:
    def test_lru_eviction_respects_byte_budget(self, tmp_path):
        a = _compile_into(tmp_path, source=FIG2_SOURCE)
        b = _compile_into(tmp_path, source=FIG1_SOURCE)
        store = store_for(str(tmp_path))
        path_a = store.path_for(a.source_hash, a.options.output_hash())
        path_b = store.path_for(b.source_hash, b.options.output_hash())
        assert path_a.exists() and path_b.exists()
        # make recency unambiguous (fs mtime granularity): a is older
        os.utime(path_a, (1, 1))
        os.utime(path_b, (2, 2))
        store.max_bytes = store.total_bytes() - 1
        removed = store.evict()
        assert removed == 1
        assert not path_a.exists()  # least recently used went first
        assert path_b.exists()

    def test_load_refreshes_recency(self, tmp_path):
        a = _compile_into(tmp_path, source=FIG2_SOURCE)
        b = _compile_into(tmp_path, source=FIG1_SOURCE)
        store = store_for(str(tmp_path))
        path_a = store.path_for(a.source_hash, a.options.output_hash())
        path_b = store.path_for(b.source_hash, b.options.output_hash())
        os.utime(path_a, (1, 1))
        os.utime(path_b, (2, 2))
        # serving a bumps it to most recent, so b becomes the victim
        assert store.load(a.source_hash, a.options.output_hash()) is not None
        os.utime(path_a, None)  # belt and braces on coarse clocks
        store.max_bytes = store.total_bytes() - 1
        store.evict()
        assert path_a.exists()
        assert not path_b.exists()


class TestRegistry:
    def test_store_for_dedupes_by_resolved_path(self, tmp_path):
        direct = store_for(str(tmp_path))
        dotted = store_for(str(tmp_path / "." ))
        assert direct is dotted

    def test_stats_shape(self, tmp_path):
        _compile_into(tmp_path)
        stats = store_for(str(tmp_path)).stats()
        for key in ("entries", "bytes", "spills", "loads", "evictions"):
            assert key in stats
        assert stats["entries"] == 1
        assert stats["bytes"] > 0


class TestKeySpace:
    """The disk key excludes caching knobs (CompileOptions.output_hash)."""

    def test_persist_false_reader_hits_persist_true_writers_entry(
        self, tmp_path
    ):
        writer = _compile_into(tmp_path, persist=True)
        assert not writer.cache_hit
        reader = _compile_into(tmp_path, persist=False)
        assert reader.cache_hit, (
            "read-only mode must share the writer's key space"
        )

    def test_store_survives_being_moved(self, tmp_path):
        import shutil

        original = tmp_path / "original"
        moved = tmp_path / "moved"
        options = CompileOptions(cache_dir=str(original))
        cold = pipeline_compile(
            FIG2_SOURCE, options=options, cache=CompileCache()
        )
        assert not cold.cache_hit
        shutil.move(str(original), str(moved))
        warm = pipeline_compile(
            FIG2_SOURCE,
            options=CompileOptions(cache_dir=str(moved)),
            cache=CompileCache(),
        )
        assert warm.cache_hit, "a relocated store must keep its entries"

    def test_foreign_repro_version_is_a_clean_miss(self, tmp_path):
        result = _compile_into(tmp_path)
        store = store_for(str(tmp_path))
        path = store.path_for(
            result.source_hash, result.options.output_hash()
        )
        payload = pickle.loads(path.read_bytes())
        payload["repro"] = "0.0.0-someone-else"
        path.write_bytes(pickle.dumps(payload))
        # a version-mismatched entry misses cleanly and is dropped —
        # never deserialized into a possibly stale class layout
        assert (
            store.load(result.source_hash, result.options.output_hash())
            is None
        )
        assert not path.exists()


class TestReopenedStore:
    def test_first_spill_enforces_budget_against_preexisting_bytes(
        self, tmp_path
    ):
        # a previous process left two entries behind
        a = _compile_into(tmp_path, source=FIG2_SOURCE)
        b = _compile_into(tmp_path, source=FIG1_SOURCE)
        store = store_for(str(tmp_path))
        path_a = store.path_for(a.source_hash, a.options.output_hash())
        path_b = store.path_for(b.source_hash, b.options.output_hash())
        os.utime(path_a, (1, 1))
        os.utime(path_b, (2, 2))
        # a fresh store instance (new process) with a budget smaller
        # than the leftovers must trim them on its first spill, even
        # though it spilled almost nothing itself
        reopened = ArtifactStore(
            str(tmp_path), max_bytes=path_b.stat().st_size + 1
        )
        result = _compile_into(tmp_path / "elsewhere")  # any result
        assert reopened.spill(result)
        assert not path_a.exists(), "pre-existing LRU entry must go"
