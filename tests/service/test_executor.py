"""Batch executor: correctness across backends, metrics, error paths."""

import pytest

from repro.service.batching import ExecRequest
from repro.service.executor import BatchExecutor

from repro.workloads.render import (
    DEFAULT_GLOBALS,
    RENDER_PURE_IMPLS,
    RENDER_SOURCE,
    build_document,
    replicated_pages_spec,
)


def render_request(trees=6, pages=2, source=RENDER_SOURCE, **kw):
    return ExecRequest(
        source=source,
        trees=[replicated_pages_spec(pages) for _ in range(trees)],
        build_tree=build_document,
        globals_map=dict(DEFAULT_GLOBALS),
        pure_impls=RENDER_PURE_IMPLS,
        **kw,
    )


def reference_summaries(trees=6, pages=2):
    """Direct (no executor) execution of the same forest."""
    from repro.pipeline import compile as pipeline_compile
    from repro.runtime import Heap
    from repro.service.batching import default_collect

    result = pipeline_compile(RENDER_SOURCE, pure_impls=RENDER_PURE_IMPLS)
    out = []
    for _ in range(trees):
        heap = Heap(result.program)
        root = build_document(
            result.program, heap, replicated_pages_spec(pages)
        )
        result.compiled_fused.run_fused(heap, root, DEFAULT_GLOBALS)
        out.append(default_collect(result.program, heap, root))
    return out


class TestBackendsAgree:
    @pytest.mark.parametrize("backend,workers", [
        ("inline", 1),
        ("thread", 2),
        ("process", 2),
    ])
    def test_matches_direct_execution(self, backend, workers):
        expected = reference_summaries()
        with BatchExecutor(workers=workers, backend=backend) as executor:
            [result] = executor.run([render_request()])
        assert result.ok, result.error
        assert [t.summary for t in result.trees] == expected
        assert [t.index for t in result.trees] == list(range(6))

    def test_unfused_baseline_agrees_with_fused(self):
        with BatchExecutor(workers=1, backend="inline") as executor:
            fused, unfused = executor.run(
                [render_request(fused=True), render_request(fused=False)]
            )
        assert fused.ok and unfused.ok
        assert [t.summary["snapshot_sha"] for t in fused.trees] == [
            t.summary["snapshot_sha"] for t in unfused.trees
        ]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            BatchExecutor(backend="gpu")


class TestBatchingBehavior:
    def test_shared_artifact_compiles_once_per_wave(self):
        with BatchExecutor(workers=2, backend="thread") as executor:
            results = executor.run([render_request(), render_request()])
            assert all(r.ok for r in results)
            # one group, one batch record, both requests inside it
            assert len(executor.batches) == 1
            assert executor.batches[0].requests == 2
            assert executor.batches[0].trees == 12

    def test_mixed_artifacts_split_batches(self):
        with BatchExecutor(workers=1, backend="inline") as executor:
            results = executor.run(
                [
                    render_request(trees=2),
                    render_request(trees=2, fused=False),
                ]
            )
        assert all(r.ok for r in results)
        # fused flag does not change the compile key; both requests
        # share one artifact group
        assert len(executor.batches) == 1

    def test_async_submissions_coalesce(self):
        with BatchExecutor(
            workers=2, backend="thread", linger_seconds=0.05
        ) as executor:
            tickets = [executor.submit(render_request(trees=2))
                       for _ in range(4)]
            results = [t.result(timeout=60) for t in tickets]
        assert all(r.ok for r in results)
        assert executor.stats()["completed_requests"] == 4
        # the linger window batches the burst into few waves
        assert executor.stats()["waves"] <= 2


class TestMetrics:
    def test_stats_shape_and_latency_percentiles(self):
        with BatchExecutor(workers=2, backend="thread") as executor:
            executor.run([render_request(trees=8)])
            stats = executor.stats()
        assert stats["completed_trees"] == 8
        latency = stats["tree_latency"]
        assert latency["count"] == 8
        assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]
        [batch] = stats["recent_batches"]
        assert batch["trees"] == 8
        assert batch["shards"] >= 2
        assert batch["queue_depth"] == 0
        assert batch["compile_seconds"] > 0

    def test_failed_requests_counted(self):
        with BatchExecutor(workers=1, backend="inline") as executor:
            [result] = executor.run(
                [render_request(source="not grafter at all !!")]
            )
        assert not result.ok
        assert "compile failed" in result.error
        assert executor.stats()["failed_requests"] == 1


class TestErrorPaths:
    def test_shard_failure_is_contained(self):
        def explode(program, heap, spec):
            raise RuntimeError("boom")

        bad = ExecRequest(
            source=RENDER_SOURCE,
            trees=[replicated_pages_spec(1)],
            build_tree=explode,
            globals_map=dict(DEFAULT_GLOBALS),
            pure_impls=RENDER_PURE_IMPLS,
        )
        good = render_request(trees=2)
        with BatchExecutor(workers=1, backend="inline") as executor:
            bad_result, good_result = executor.run([bad, good])
        assert not bad_result.ok
        assert "shard failed" in bad_result.error
        assert good_result.ok
        assert len(good_result.trees) == 2

    def test_submit_after_close_rejected(self):
        executor = BatchExecutor(workers=1, backend="inline")
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.submit(render_request())


class TestCacheDirFlows:
    def test_executor_cache_dir_applies_to_requests(self, tmp_path):
        from repro.service.store import store_for

        with BatchExecutor(
            workers=1, backend="inline", cache_dir=str(tmp_path)
        ) as executor:
            [result] = executor.run([render_request(trees=1)])
        assert result.ok
        assert len(store_for(str(tmp_path))) == 1

    def test_request_cache_dir_wins_over_executor(self, tmp_path):
        from repro.pipeline import CompileOptions
        from repro.service.store import store_for

        mine = tmp_path / "mine"
        other = tmp_path / "other"
        req = render_request(
            trees=1, options=CompileOptions(cache_dir=str(mine))
        )
        with BatchExecutor(
            workers=1, backend="inline", cache_dir=str(other)
        ) as executor:
            [result] = executor.run([req])
        assert result.ok
        assert len(store_for(str(mine))) == 1
        assert len(store_for(str(other))) == 0


class TestLifecycleAndOptions:
    def test_emit_false_request_fails_with_clear_message(self):
        from repro.pipeline import CompileOptions

        with BatchExecutor(workers=1, backend="inline") as executor:
            [result] = executor.run(
                [
                    render_request(
                        trees=1,
                        options=CompileOptions(emit=False, use_cache=False),
                    )
                ]
            )
        assert not result.ok
        assert "emit=True" in result.error

    def test_close_fails_still_queued_tickets(self):
        from concurrent.futures import Future

        import pytest as _pytest

        executor = BatchExecutor(workers=1, backend="inline")
        # enqueue directly (no dispatcher) to model requests the
        # dispatcher never got to before shutdown
        ticket: Future = Future()
        executor._pending.put((render_request(trees=1), ticket))
        executor.close()
        with _pytest.raises(RuntimeError, match="closed before execution"):
            ticket.result(timeout=1)
