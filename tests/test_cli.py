"""CLI tests (`python -m repro ...`)."""

import pytest

from repro.cli import main

from tests.fixtures import FIG2_SOURCE

CONDITIONAL_SOURCE = """
_tree_ class N {
    _child_ N* kid;
    int flag = 0;
    _traversal_ virtual void go() {}
};
_tree_ class I : public N {
    _traversal_ void go() {
        if (this->flag == 1) { this->kid->go(); }
    }
};
_tree_ class L : public N { };
int main() { N* root = ...; root->go(); }
"""


@pytest.fixture
def fig2_file(tmp_path):
    path = tmp_path / "fig2.grafter"
    path.write_text(FIG2_SOURCE)
    return str(path)


@pytest.fixture
def conditional_file(tmp_path):
    path = tmp_path / "cond.grafter"
    path.write_text(CONDITIONAL_SOURCE)
    return str(path)


class TestCli:
    def test_parse_summary(self, fig2_file, capsys):
        assert main(["parse", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "tree types: 4" in out
        assert "computeWidth" in out

    def test_print_round_trips(self, fig2_file, capsys, tmp_path):
        assert main(["print", fig2_file]) == 0
        printed = capsys.readouterr().out
        reprinted = tmp_path / "reprinted.grafter"
        reprinted.write_text(printed)
        assert main(["parse", str(reprinted)]) == 0

    def test_fuse_prints_units(self, fig2_file, capsys):
        assert main(["fuse", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "_fuse__" in out
        assert "active_flags" in out
        assert "fused traversal functions" in out

    def test_explain_reports_groups(self, fig2_file, capsys):
        assert main(["explain", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "sequence:" in out
        assert "group 0:" in out

    def test_dot_output(self, fig2_file, capsys):
        assert main(["dot", fig2_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "->" in out

    def test_missing_file_errors(self, capsys):
        assert main(["parse", "/nonexistent.grafter"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_grafter_mode_rejects_conditional_calls(self, conditional_file, capsys):
        assert main(["parse", conditional_file]) == 1
        assert "conditional return" in capsys.readouterr().err

    def test_treefuser_mode_accepts_conditional_calls(self, conditional_file, capsys):
        assert main(["--mode", "treefuser", "parse", conditional_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_fuse_treefuser_mode(self, conditional_file, capsys):
        assert main(["--mode", "treefuser", "fuse", conditional_file]) == 0
        out = capsys.readouterr().out
        assert "_fuse__" in out
