"""CLI tests (`python -m repro ...`)."""

import pytest

from repro.cli import main

from tests.fixtures import FIG2_SOURCE

CONDITIONAL_SOURCE = """
_tree_ class N {
    _child_ N* kid;
    int flag = 0;
    _traversal_ virtual void go() {}
};
_tree_ class I : public N {
    _traversal_ void go() {
        if (this->flag == 1) { this->kid->go(); }
    }
};
_tree_ class L : public N { };
int main() { N* root = ...; root->go(); }
"""


@pytest.fixture
def fig2_file(tmp_path):
    path = tmp_path / "fig2.grafter"
    path.write_text(FIG2_SOURCE)
    return str(path)


@pytest.fixture
def conditional_file(tmp_path):
    path = tmp_path / "cond.grafter"
    path.write_text(CONDITIONAL_SOURCE)
    return str(path)


class TestCli:
    def test_parse_summary(self, fig2_file, capsys):
        assert main(["parse", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "tree types: 4" in out
        assert "computeWidth" in out

    def test_print_round_trips(self, fig2_file, capsys, tmp_path):
        assert main(["print", fig2_file]) == 0
        printed = capsys.readouterr().out
        reprinted = tmp_path / "reprinted.grafter"
        reprinted.write_text(printed)
        assert main(["parse", str(reprinted)]) == 0

    def test_fuse_prints_units(self, fig2_file, capsys):
        assert main(["fuse", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "_fuse__" in out
        assert "active_flags" in out
        assert "fused traversal functions" in out

    def test_explain_reports_groups(self, fig2_file, capsys):
        assert main(["explain", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "sequence:" in out
        assert "group 0:" in out

    def test_dot_output(self, fig2_file, capsys):
        assert main(["dot", fig2_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "->" in out

    def test_missing_file_errors(self, capsys):
        assert main(["parse", "/nonexistent.grafter"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_grafter_mode_rejects_conditional_calls(self, conditional_file, capsys):
        assert main(["parse", conditional_file]) == 1
        assert "conditional return" in capsys.readouterr().err

    def test_treefuser_mode_accepts_conditional_calls(self, conditional_file, capsys):
        assert main(["--mode", "treefuser", "parse", conditional_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_fuse_treefuser_mode(self, conditional_file, capsys):
        assert main(["--mode", "treefuser", "fuse", conditional_file]) == 0
        out = capsys.readouterr().out
        assert "_fuse__" in out

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out


class TestCompileCommand:
    def test_compile_summary(self, fig2_file, capsys):
        assert main(["compile", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "compiled" in out
        assert "fused units:" in out
        assert "generated python:" in out

    def test_compile_timings_format(self, fig2_file, capsys):
        assert main(["compile", fig2_file, "--timings"]) == 0
        out = capsys.readouterr().out
        assert "pipeline timings for" in out
        # every stage appears as a row with a wall-time in ms
        for stage in [
            "parse", "validate", "access-analysis",
            "dependence", "fusion", "schedule", "emit",
        ]:
            assert stage in out
        assert "ms" in out
        assert "total" in out

    def test_compile_second_run_hits_cache(self, fig2_file, capsys):
        assert main(["compile", fig2_file]) == 0
        first = capsys.readouterr().out
        assert main(["compile", fig2_file, "--timings"]) == 0
        second = capsys.readouterr().out
        # same process => global compile cache serves the second run
        assert "cache hit" in second
        assert "cache-lookup" in second
        assert "cold compile (cached):" in second
        assert "fused units:" in first and "fused units:" in second

    def test_compile_no_emit(self, fig2_file, capsys):
        assert main(["compile", fig2_file, "--no-emit"]) == 0
        out = capsys.readouterr().out
        assert "generated python:" not in out

    def test_compile_emit_python_writes_module(self, fig2_file, capsys, tmp_path):
        target = tmp_path / "fused_module.py"
        assert main(["compile", fig2_file, "--emit-python", str(target)]) == 0
        out = capsys.readouterr().out
        assert f"written to {target}" in out
        text = target.read_text()
        assert "def run_fused(" in text

    def test_compile_emit_python_conflicts_with_no_emit(self, fig2_file, capsys, tmp_path):
        target = tmp_path / "never.py"
        assert main([
            "compile", fig2_file, "--no-emit", "--emit-python", str(target),
        ]) == 1
        assert "requires emission" in capsys.readouterr().err
        assert not target.exists()

    def test_compile_treefuser_mode(self, conditional_file, capsys):
        assert main(["--mode", "treefuser", "compile", conditional_file]) == 0
        assert "compiled" in capsys.readouterr().out

    def test_compile_missing_file_errors(self, capsys):
        assert main(["compile", "/nonexistent.grafter"]) == 1
        assert "error:" in capsys.readouterr().err


class TestServiceCli:
    def test_exec_batched(self, capsys):
        assert main([
            "exec", "--workload", "render", "--trees", "4", "--pages", "2",
            "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "4 trees executed (batched, 2 workers, thread backend)" in out
        assert "tree latency: p50" in out

    def test_exec_sequential_inline(self, capsys):
        assert main([
            "exec", "--trees", "3", "--pages", "2", "--sequential",
            "--backend", "inline", "--workers", "1",
        ]) == 0
        assert "(sequential, 1 workers, inline backend)" in capsys.readouterr().out

    def test_exec_with_cache_dir_reports_store(self, capsys, tmp_path):
        assert main([
            "exec", "--trees", "2", "--pages", "2", "--backend", "inline",
            "--workers", "1", "--cache-dir", str(tmp_path / "store"),
        ]) == 0
        assert "store: 1 entries" in capsys.readouterr().out

    def test_exec_unknown_workload_errors(self, capsys):
        assert main(["exec", "--workload", "nope"]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_compile_cache_dir_spills(self, fig2_file, capsys, tmp_path):
        store = tmp_path / "artifacts"
        assert main(["compile", fig2_file, "--cache-dir", str(store)]) == 0
        assert "compiled (cold)" in capsys.readouterr().out
        assert list(store.glob("v*/*/*.pkl"))


class TestFlexibleCompileSource:
    def test_compile_from_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(CONDITIONAL_SOURCE))
        assert main(["--mode", "treefuser", "compile", "-"]) == 0
        out = capsys.readouterr().out
        assert "<stdin>: compiled" in out

    def test_compile_inline_source(self, capsys):
        assert main(["--mode", "treefuser", "compile", CONDITIONAL_SOURCE]) == 0
        out = capsys.readouterr().out
        assert "<inline>: compiled" in out
        assert "fused units" in out

    def test_file_path_still_wins_over_inline(self, fig2_file, capsys):
        assert main(["compile", fig2_file]) == 0
        assert f"{fig2_file}: compiled" in capsys.readouterr().out

    def test_non_source_argument_stays_an_error(self, capsys):
        assert main(["compile", "definitely-missing.grafter"]) == 1
        assert "no such file" in capsys.readouterr().err


class TestRegistryCli:
    def test_exec_kdtree_with_size(self, capsys):
        assert main([
            "exec", "--workload", "kdtree", "--trees", "2", "--size", "2",
            "--backend", "inline", "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "kdtree: 2 trees executed" in out

    def test_exec_fmm(self, capsys):
        assert main([
            "exec", "--workload", "fmm", "--trees", "2", "--size", "16",
            "--backend", "inline", "--workers", "1",
        ]) == 0
        assert "fmm: 2 trees executed" in capsys.readouterr().out

    def test_pages_on_non_render_workload_errors(self, capsys):
        assert main([
            "exec", "--workload", "kdtree", "--pages", "3",
            "--backend", "inline", "--workers", "1",
        ]) == 1
        assert "--size" in capsys.readouterr().err
