"""Frontend tests: lexing, parsing, resolution, error reporting."""

import pytest

from repro.errors import FrontendError, ValidationError
from repro.frontend import parse_program, tokenize
from repro.ir import Assign, Delete, If, New, Return, TraverseStmt
from repro.ir.exprs import BinOp, Const, DataAccess, PureCall
from repro.ir.printer import print_program

from tests.fixtures import FIG2_SOURCE, fig1_program, fig2_program


class TestLexer:
    def test_tokens_with_positions(self):
        tokens = tokenize("this->x = 1;\n  y")
        texts = [t.text for t in tokens]
        assert texts == ["this", "->", "x", "=", "1", ";", "y", ""]
        assert tokens[0].line == 1
        assert tokens[-2].line == 2
        assert tokens[-2].column == 3

    def test_comments_are_skipped(self):
        tokens = tokenize("a // line comment\n/* block\ncomment */ b")
        assert [t.text for t in tokens][:-1] == ["a", "b"]

    def test_float_and_exponent_literals(self):
        tokens = tokenize("1.5 2e3 7")
        assert [t.text for t in tokens][:-1] == ["1.5", "2e3", "7"]

    def test_maximal_munch_punctuation(self):
        tokens = tokenize("a->b ... <= == &&")
        assert [t.text for t in tokens][:-1] == ["a", "->", "b", "...", "<=", "==", "&&"]

    def test_char_literal(self):
        tokens = tokenize("'x'")
        assert tokens[0].kind == "char"
        assert tokens[0].text == "x"

    def test_unterminated_comment_raises(self):
        with pytest.raises(FrontendError, match="unterminated"):
            tokenize("/* never closed")

    def test_unexpected_character_raises(self):
        with pytest.raises(FrontendError, match="unexpected character"):
            tokenize("a @ b")


class TestParseFig2:
    def test_fig2_parses_and_validates(self):
        program = fig2_program()
        assert program.name == "fig2"

    def test_textbox_width_body_shape(self):
        program = fig2_program()
        body = program.tree_types["TextBox"].methods["computeWidth"].body
        assert isinstance(body[0], TraverseStmt)
        assert body[0].receiver.child.name == "Next"
        assert isinstance(body[1], Assign)
        assert body[1].target.steps[-1].field.name == "Width"
        assert isinstance(body[2], Assign)

    def test_group_width_reads_cross_child_data(self):
        program = fig2_program()
        body = program.tree_types["Group"].methods["computeWidth"].body
        assign = body[2]
        access_paths = [
            sub.path
            for sub in _walk(assign.value)
        ]
        rendered = sorted(str(p) for p in access_paths)
        assert "this->Content->Width" in rendered
        assert "this->Border.Size" in rendered

    def test_if_statement_parsed(self):
        program = fig2_program()
        body = program.tree_types["TextBox"].methods["computeHeight"].body
        assert isinstance(body[-1], If)
        assert isinstance(body[-1].cond, BinOp)

    def test_global_read_in_expression(self):
        program = fig2_program()
        body = program.tree_types["TextBox"].methods["computeHeight"].body
        height_assign = body[1]
        globals_read = [
            sub.path.base_name
            for sub in _walk(height_assign.value)
            if sub.path.is_global
        ]
        assert globals_read == ["CHAR_WIDTH"]


def _walk(expr):
    from repro.ir.exprs import walk_expr

    return [s for s in walk_expr(expr) if isinstance(s, DataAccess)]


class TestStatements:
    def test_new_delete_and_cast(self):
        source = """
        _tree_ class Expr {
            _child_ Expr* left;
            int kind = 0;
            _traversal_ virtual void rewrite() {}
        };
        _tree_ class Add : public Expr {
            _child_ Expr* right;
            _traversal_ void rewrite() {
                this->left->rewrite();
                if (this->left->kind == 1) {
                    delete this->left;
                    this->left = new Add();
                    static_cast<Add*>(this->left)->kind = 2;
                }
            }
        };
        """
        program = parse_program(source)
        body = program.tree_types["Add"].methods["rewrite"].body
        if_stmt = body[1]
        assert isinstance(if_stmt.then_body[0], Delete)
        assert isinstance(if_stmt.then_body[1], New)
        assert if_stmt.then_body[1].type_name == "Add"
        cast_assign = if_stmt.then_body[2]
        # the cast wraps `this->left`, so it attaches to the `kind` step
        assert cast_assign.target.steps[-1].pre_cast == "Add"
        assert cast_assign.target.steps[0].field.name == "left"

    def test_cast_step_records_pre_cast(self):
        source = """
        _tree_ class Expr {
            _child_ Expr* left;
            int kind = 0;
            _traversal_ virtual void rewrite() {}
        };
        _tree_ class Add : public Expr {
            _child_ Expr* right;
            int extra = 0;
            _traversal_ void rewrite() {
                static_cast<Add*>(this->left)->extra = 1;
            }
        };
        """
        program = parse_program(source)
        body = program.tree_types["Add"].methods["rewrite"].body
        target = body[0].target
        assert target.steps[1].pre_cast == "Add"
        assert target.steps[1].field.owner == "Add"

    def test_locals_aliases_params_and_pure_calls(self):
        source = """
        _pure_ int clamp(int v, int lo, int hi);
        _tree_ class Node {
            _child_ Node* kid;
            int value = 0;
            _traversal_ virtual void go(int bias) {}
        };
        _tree_ class Inner : public Node {
            _traversal_ void go(int bias) {
                int tmp = this->value + bias;
                Node* const k = this->kid;
                k->value = clamp(tmp, 0, 100);
                this->kid->go(tmp);
            }
        };
        _tree_ class Stop : public Node { };
        """
        program = parse_program(source, pure_impls={"clamp": lambda v, lo, hi: max(lo, min(v, hi))})
        body = program.tree_types["Inner"].methods["go"].body
        assert body[0].name == "tmp"
        assert body[1].name == "k"
        assign = body[2]
        assert assign.target.base == "local:k"
        assert isinstance(assign.value, PureCall)
        call = body[3]
        assert isinstance(call, TraverseStmt)
        assert isinstance(call.args[0], DataAccess)

    def test_conditional_return_for_truncation(self):
        source = """
        _tree_ class Node {
            _child_ Node* kid;
            int stop = 0;
            _traversal_ virtual void go() {}
        };
        _tree_ class Inner : public Node {
            _traversal_ void go() {
                if (this->stop == 1) return;
                this->kid->go();
            }
        };
        _tree_ class Stop2 : public Node { };
        """
        program = parse_program(source)
        body = program.tree_types["Inner"].methods["go"].body
        assert isinstance(body[0], If)
        assert isinstance(body[0].then_body[0], Return)


class TestErrors:
    def test_traverse_inside_if_rejected_in_grafter_mode(self):
        source = """
        _tree_ class Node {
            _child_ Node* kid;
            int flag = 0;
            _traversal_ virtual void go() {}
        };
        _tree_ class Inner : public Node {
            _traversal_ void go() {
                if (this->flag == 1) { this->kid->go(); }
            }
        };
        """
        with pytest.raises(ValidationError, match="conditional return"):
            parse_program(source)

    def test_deep_receiver_rejected(self):
        source = """
        _tree_ class Node {
            _child_ Node* kid;
            _traversal_ virtual void go() {}
        };
        _tree_ class Inner : public Node {
            _traversal_ void go() {
                this->kid->kid->go();
            }
        };
        """
        with pytest.raises(FrontendError, match="one child hop"):
            parse_program(source)

    def test_unknown_member_rejected(self):
        source = """
        _tree_ class Node {
            int x = 0;
            _traversal_ void go() { this->y = 1; }
        };
        """
        with pytest.raises(ValidationError, match="no field 'y'"):
            parse_program(source)

    def test_assign_to_tree_node_rejected(self):
        source = """
        _tree_ class Node {
            _child_ Node* kid;
            _traversal_ void go() { this->kid = this->kid; }
        };
        """
        with pytest.raises((ValidationError, FrontendError)):
            parse_program(source)

    def test_unknown_traversal_on_receiver(self):
        source = """
        _tree_ class Node {
            _child_ Node* kid;
            _traversal_ void go() { this->kid->missing(); }
        };
        """
        with pytest.raises(FrontendError, match="no traversal"):
            parse_program(source)

    def test_entry_on_unknown_method(self):
        source = """
        _tree_ class Node { int x = 0; };
        int main() {
            Node* root = ...;
            root->nope();
        }
        """
        with pytest.raises(ValidationError, match="unknown traversal"):
            parse_program(source)


class TestRoundTrip:
    def test_print_then_reparse_fig2(self):
        program = fig2_program()
        printed = print_program(program)
        reparsed = parse_program(printed, name="fig2rt")
        assert set(reparsed.tree_types) == set(program.tree_types)
        for type_name, tree_type in program.tree_types.items():
            other = reparsed.tree_types[type_name]
            assert set(tree_type.methods) == set(other.methods)
            for method_name, method in tree_type.methods.items():
                other_method = other.methods[method_name]
                assert len(method.body) == len(other_method.body)

    def test_print_then_reparse_fig1(self):
        program = fig1_program()
        printed = print_program(program)
        reparsed = parse_program(printed)
        assert set(reparsed.tree_types) == set(program.tree_types)
