"""Property tests: parse -> print -> parse is the identity (up to IR
equality) on randomly generated programs."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import parse_program
from repro.ir.printer import print_method, print_program

from tests.generators import random_program_source


def _method_signatures(program):
    return {
        (m.owner, m.name, tuple(p.type_name for p in m.params), len(m.body))
        for m in program.all_methods()
    }


@pytest.mark.parametrize("seed", range(20))
def test_random_program_round_trips(seed):
    source = random_program_source(random.Random(seed))
    program = parse_program(source, name=f"rt{seed}")
    printed = print_program(program)
    reparsed = parse_program(printed, name=f"rt{seed}-2")
    assert set(reparsed.tree_types) == set(program.tree_types)
    assert _method_signatures(reparsed) == _method_signatures(program)
    assert [c.method_name for c in reparsed.entry] == [
        c.method_name for c in program.entry
    ]
    # printing is a fixpoint after one round trip
    assert print_program(reparsed) == printed


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=30, deadline=None)
def test_round_trip_preserves_statement_text(seed):
    source = random_program_source(random.Random(seed))
    program = parse_program(source, name=f"hrt{seed}")
    reparsed = parse_program(print_program(program), name=f"hrt{seed}-2")
    for tree_type in program.tree_types.values():
        for method in tree_type.methods.values():
            other = reparsed.tree_types[tree_type.name].methods[method.name]
            assert print_method(method) == print_method(other)
