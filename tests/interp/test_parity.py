"""Interpreter parity: the reference interpreter must produce the same
snapshot, final globals, and write-set as BOTH compiled forms (fused and
unfused) under BOTH tree layouts (object graph and forest pool), on all
four paper workloads.

This is the acceptance gate for the interpreter being "the executable
specification": if it ever disagrees with compiled output, either a
backend is unsound or the spec itself regressed — both are release
blockers, and :func:`repro.interp.diff_report` names the first
diverging path so the failure reads like a bug report.
"""

import pytest

from repro.interp import (
    InterpretedModule,
    diff_report,
    interpret_workload,
    make_record,
    resolve_program,
)
from repro.pipeline import CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.runtime.heap import Heap
from repro.workloads.astlang import astlang_workload
from repro.workloads.fmm import fmm_workload
from repro.workloads.kdtree import kdtree_workload
from repro.workloads.render import render_workload

CASES = [
    ("render", render_workload, {"pages": 2}),
    ("astlang", astlang_workload, {"functions": 6}),
    ("kdtree", kdtree_workload, {"depth": 4}),
    ("fmm", fmm_workload, {"particles": 48}),
]


def _interp_record(workload, spec_kwargs, layout):
    program, heap, root, context = None, None, None, None
    resolved = resolve_program(
        workload.source,
        name=workload.name,
        pure_impls=dict(workload.pure_impls or {}) or None,
    )
    heap = Heap(resolved)
    root = workload.build_tree(
        resolved, heap, workload.make_spec(**spec_kwargs)
    )
    before = root.snapshot(resolved)
    globals_map = dict(workload.globals_map or {})
    module = InterpretedModule(resolved, layout=layout)
    context = module.run_entry(heap, root, globals_map)
    return make_record(
        f"interp/{layout}",
        before,
        root.snapshot(resolved),
        globals_map,
        context.globals,
    )


def _compiled_record(workload, spec_kwargs, layout, fused):
    result = pipeline_compile(
        workload, options=CompileOptions(layout=layout)
    )
    program = result.program
    heap = Heap(program)
    root = workload.build_tree(
        program, heap, workload.make_spec(**spec_kwargs)
    )
    before = root.snapshot(program)
    globals_map = dict(workload.globals_map or {})
    module = result.compiled_fused if fused else result.compiled_unfused
    runner = module.run_fused if fused else module.run_entry
    context = runner(heap, root, globals_map)
    label = f"{'fused' if fused else 'unfused'}/{layout}"
    return make_record(
        label,
        before,
        root.snapshot(program),
        globals_map,
        context.globals,
    )


@pytest.mark.parametrize(
    "name,factory,spec_kwargs",
    CASES,
    ids=[case[0] for case in CASES],
)
@pytest.mark.parametrize("layout", ["object", "pooled"])
@pytest.mark.parametrize("fused", [True, False], ids=["fused", "unfused"])
class TestInterpreterMatchesCompiled:
    def test_snapshot_globals_writes_identical(
        self, name, factory, spec_kwargs, layout, fused
    ):
        workload = factory()
        interp = _interp_record(workload, spec_kwargs, layout)
        compiled = _compiled_record(workload, spec_kwargs, layout, fused)
        report = diff_report(interp, compiled)
        assert report is None, report
        # the run actually did something, or parity is vacuous
        assert interp.write_set or interp.globals


class TestInterpretWorkloadHelper:
    def test_returns_compiled_style_handles(self):
        program, heap, root, context = interpret_workload(
            render_workload(), pages=2
        )
        assert root.snapshot(program)  # live tree, snapshotable
        assert context.globals  # final globals observable

    def test_pooled_layout_writes_back(self):
        obj = interpret_workload(render_workload(), pages=2)
        pooled = interpret_workload(
            render_workload(), layout="pooled", pages=2
        )
        assert obj[2].snapshot(obj[0]) == pooled[2].snapshot(pooled[0])
        assert obj[3].globals == pooled[3].globals

    def test_unknown_layout_rejected_at_construction(self):
        from repro.errors import RuntimeFailure

        program = resolve_program(render_workload().source)
        with pytest.raises(RuntimeFailure, match="layout"):
            InterpretedModule(program, layout="columnar")

    def test_run_stats_recorded(self):
        workload = render_workload()
        program = resolve_program(
            workload.source, pure_impls=dict(workload.pure_impls or {})
        )
        heap = Heap(program)
        root = workload.build_tree(
            program, heap, workload.make_spec(pages=2)
        )
        module = InterpretedModule(program)
        module.run_entry(heap, root, dict(workload.globals_map or {}))
        stats = module.last_stats
        assert stats["node_visits"] > 0
        assert stats["writes"] > 0
        assert stats["seconds"] >= 0
