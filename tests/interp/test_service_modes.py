"""The interpret serving tier: ``mode="interpret"`` through every front
door — ``Session.run``, the batch executor, the HTTP ``/submit`` body —
plus the grouping, counting, and tracing contracts around it."""

import json
import threading
import urllib.request

import pytest

import repro
from repro import obs
from repro.service.api import TraversalService, make_server
from repro.service.batching import ExecRequest, group_requests
from repro.workloads.kdtree import kdtree_workload
from repro.workloads.render import render_workload


class TestSessionMode:
    def test_interpret_matches_compiled_summaries(self):
        with repro.Session() as session:
            interp = session.run(
                render_workload(), trees=3, mode="interpret", pages=2
            )
            compiled = session.run(render_workload(), trees=3, pages=2)
        assert interp.summaries == compiled.summaries

    def test_pooled_interpret_matches_too(self):
        with repro.Session(layout="pooled") as session:
            interp = session.run(
                kdtree_workload(), trees=2, mode="interpret", depth=3
            )
            compiled = session.run(kdtree_workload(), trees=2, depth=3)
        assert interp.summaries == compiled.summaries

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown execution mode"):
            render_workload().request(1, mode="transpile")


class TestRequestGrouping:
    def test_interpret_requests_group_apart_from_compiled(self):
        workload = render_workload()
        compiled = workload.request(1, pages=2)
        interp = workload.request(1, mode="interpret", pages=2)
        source_hash, compiled_opts = compiled.compile_key()
        interp_hash, interp_opts = interp.compile_key()
        # same program, different tier: one key component shared, the
        # other disjoint — so a wave never makes the interpret request
        # wait on the compile
        assert interp_hash == source_hash
        assert interp_opts != compiled_opts
        assert interp_opts.startswith("interp:")
        groups = group_requests([compiled, interp])
        assert len(groups) == 2

    def test_from_workload_carries_mode(self):
        request = ExecRequest.from_workload(
            render_workload(),
            [render_workload().make_spec(pages=1)],
            mode="interpret",
        )
        assert request.mode == "interpret"


class TestServiceCounters:
    def test_stats_split_interpreted_from_compiled(self):
        with TraversalService(workers=1, backend="inline") as service:
            rid_c = service.submit_workload("render", trees=1, size=1)
            rid_i = service.submit_workload(
                "render", trees=1, size=1, mode="interpret"
            )
            assert service.result(rid_c, timeout=60).ok
            assert service.result(rid_i, timeout=60).ok
            stats = service.stats()
        assert stats["interpreted_requests_total"] == 1
        assert stats["compiled_requests_total"] == 1
        assert stats["modes"] == {"compiled": 1, "interpret": 1}

    def test_http_submit_accepts_mode(self):
        service = TraversalService(workers=1, backend="inline")
        server = make_server(service, port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            request = urllib.request.Request(
                base + "/submit",
                data=json.dumps(
                    {
                        "workload": "render",
                        "trees": 1,
                        "size": 1,
                        "mode": "interpret",
                    }
                ).encode(),
                method="POST",
            )
            doc = json.loads(
                urllib.request.urlopen(request, timeout=30)
                .read()
                .decode()
            )
            assert service.result(doc["request_id"], timeout=60).ok
            stats = json.loads(
                urllib.request.urlopen(base + "/stats", timeout=30)
                .read()
                .decode()
            )
            assert stats["interpreted_requests_total"] == 1
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestInterpTracing:
    def test_interp_spans_recorded_under_request_trace(self):
        obs.enable()
        try:
            with TraversalService(
                workers=1, backend="inline"
            ) as service:
                rid = service.submit_workload(
                    "render", trees=1, size=1, mode="interpret"
                )
                assert service.result(rid, timeout=60).ok
                trace_id = service.trace_id_for(rid)
                assert trace_id is not None
                spans = service.trace_spans(trace_id)
        finally:
            obs.disable()
        names = [span["name"] for span in spans]
        assert "interp.run" in names
        shard = next(s for s in names if s == "exec.shard")
        assert shard  # the interp run nests inside normal exec spans
        run_span = next(s for s in spans if s["name"] == "interp.run")
        assert run_span["attrs"]["node_visits"] > 0

    def test_interp_metrics_counted(self):
        before = _counter_value("repro_interp_runs_total")
        with repro.Session() as session:
            session.run(
                render_workload(), trees=2, mode="interpret", pages=1
            )
        after = _counter_value("repro_interp_runs_total")
        assert after - before == 2


def _counter_value(name: str) -> float:
    total = 0.0
    for line in obs.REGISTRY.render_prometheus().splitlines():
        if line.startswith(name) and not line.startswith("#"):
            total += float(line.rsplit(" ", 1)[1])
    return total
