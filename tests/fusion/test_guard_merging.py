"""TreeFuser-mode slot merging: mutually exclusive tag guards for one
member/method collapse into a single fused-call slot."""

from repro.frontend import parse_program
from repro.fusion import fuse_program
from repro.fusion.engine import _guards_exclusive, _tag_test_atoms
from repro.fusion.fused_ir import GroupCall
from repro.ir.access import AccessPath, Step
from repro.ir.exprs import BinOp, Const, DataAccess, UnaryOp
from repro.ir.types import DataField
from repro.ir.validate import LanguageMode


def _tag_access():
    field = DataField(name="tag", owner="TNode", type_name="int")
    return DataAccess(path=AccessPath.this(Step(field=field)))


def _eq(value):
    return BinOp(op="==", lhs=_tag_access(), rhs=Const(value, "int"))


def _or(a, b):
    return BinOp(op="||", lhs=a, rhs=b)


class TestTagTestAtoms:
    def test_single_equality(self):
        assert _tag_test_atoms(_eq(3)) == ("this->tag", {3})

    def test_disjunction_merges_constants(self):
        atoms = _tag_test_atoms(_or(_eq(1), _or(_eq(2), _eq(5))))
        assert atoms == ("this->tag", {1, 2, 5})

    def test_non_tag_shapes_rejected(self):
        assert _tag_test_atoms(Const(1, "int")) is None
        assert _tag_test_atoms(BinOp(op=">", lhs=_tag_access(), rhs=Const(1, "int"))) is None
        assert _tag_test_atoms(UnaryOp(op="!", operand=_eq(1))) is None

    def test_mixed_paths_rejected(self):
        other_field = DataField(name="other", owner="TNode", type_name="int")
        other = DataAccess(path=AccessPath.this(Step(field=other_field)))
        mixed = _or(_eq(1), BinOp(op="==", lhs=other, rhs=Const(2, "int")))
        assert _tag_test_atoms(mixed) is None


class TestGuardExclusivity:
    def test_disjoint_constants_exclusive(self):
        assert _guards_exclusive(_eq(1), _eq(2))
        assert _guards_exclusive(_or(_eq(1), _eq(3)), _eq(2))

    def test_overlapping_constants_not_exclusive(self):
        assert not _guards_exclusive(_eq(1), _eq(1))
        assert not _guards_exclusive(_or(_eq(1), _eq(2)), _eq(2))

    def test_unknown_shapes_not_exclusive(self):
        assert not _guards_exclusive(_eq(1), Const(True, "bool"))


class TestSlotMergingEndToEnd:
    SOURCE = """
    _tree_ class TN {
        _child_ TN* kid;
        int tag = 0;
        int a = 0;
        _traversal_ void p1() {
            if (this->tag == 1) { this->kid->p1(); }
            if (this->tag == 2) { this->kid->p1(); }
            if (this->tag == 1) { this->a = 1; }
            if (this->tag == 2) { this->a = 2; }
        }
        _traversal_ void p2() {
            if (this->tag == 1) { this->kid->p2(); }
            if (this->tag == 2) { this->kid->p2(); }
        }
    };
    int main() { TN* root = ...; root->p1(); root->p2(); }
    """

    def test_exclusive_variants_share_one_slot(self):
        program = parse_program(self.SOURCE, mode=LanguageMode.TREEFUSER)
        fused = fuse_program(program)
        unit = fused.units[("TN::p1", "TN::p2")]
        groups = [i for i in unit.body if isinstance(i, GroupCall)]
        assert len(groups) == 1
        group = groups[0]
        # four conditional calls merged into two slots (one per member)
        assert len(group.calls) == 2
        members = sorted(c.member for c in group.calls)
        assert members == [0, 1]
        # each slot's guard is the OR of the exclusive variants
        for call in group.calls:
            atoms = _tag_test_atoms(call.guard)
            assert atoms is not None and atoms[1] == {1, 2}

    def test_merged_slots_execute_correct_variant(self):
        from repro.runtime import Heap, Interpreter, Node

        program = parse_program(self.SOURCE, mode=LanguageMode.TREEFUSER)
        fused = fuse_program(program)

        def build(p, heap):
            leaf = Node.new(p, heap, "TN", tag=0)
            mid = Node.new(p, heap, "TN", tag=2, kid=leaf)
            return Node.new(p, heap, "TN", tag=1, kid=mid)

        heap_a = Heap(program)
        root_a = build(program, heap_a)
        Interpreter(program, heap_a).run_entry(root_a)
        heap_b = Heap(program)
        root_b = build(program, heap_b)
        interp_b = Interpreter(program, heap_b)
        interp_b.run_fused(fused, root_b)
        assert root_a.snapshot(program) == root_b.snapshot(program)
        assert root_b.get("a") == 1
        assert root_b.get("kid").get("a") == 2
