"""Differential soundness tests: fused and unfused executions must be
observationally identical (final tree state + final global state), and
fusion must never *increase* node visits.

This is the reproduction's executable version of the paper's §3.3 proof
sketch — tested on the fixtures and on randomly generated programs/trees.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import parse_program
from repro.fusion import fuse_program
from repro.runtime import Heap, Interpreter, Node
from repro.runtime.values import ObjectValue

from tests.fixtures import fig1_program, fig2_program
from tests.generators import random_program_source, random_tree


def run_both(program, build_tree, globals_init=None):
    """Run unfused and fused; return (snap_unfused, snap_fused, stats...)."""
    heap_a = Heap(program)
    root_a = build_tree(program, heap_a)
    interp_a = Interpreter(program, heap_a)
    for name, value in (globals_init or {}).items():
        interp_a.globals[name] = value
    interp_a.run_entry(root_a)

    fused = fuse_program(program)
    heap_b = Heap(program)
    root_b = build_tree(program, heap_b)
    interp_b = Interpreter(program, heap_b)
    for name, value in (globals_init or {}).items():
        interp_b.globals[name] = value
    interp_b.run_fused(fused, root_b)

    return (
        root_a.snapshot(program),
        root_b.snapshot(program),
        interp_a,
        interp_b,
    )


class TestFixtures:
    def test_fig1_equivalence(self):
        program = fig1_program()

        def build(p, heap):
            node = Node.new(p, heap, "LeafEnd")
            for i in range(6):
                node = Node.new(p, heap, "Inner", child=node, x=i, y=2 * i)
            return node

        snap_a, snap_b, interp_a, interp_b = run_both(program, build)
        assert snap_a == snap_b
        assert interp_b.stats.node_visits < interp_a.stats.node_visits

    def test_fig2_equivalence_and_visit_halving(self):
        program = fig2_program()

        def build(p, heap):
            def textbox(n, nxt):
                return Node.new(
                    p, heap, "TextBox",
                    Text=ObjectValue("String", {"Length": n}), Next=nxt,
                )

            content = textbox(5, textbox(7, Node.new(p, heap, "End")))
            group = Node.new(p, heap, "Group")
            group.set("Content", content)
            group.set("Next", textbox(3, Node.new(p, heap, "End")))
            group.get("Border").set("Size", 2)
            return group

        snap_a, snap_b, interp_a, interp_b = run_both(
            program, build, globals_init={"CHAR_WIDTH": 2}
        )
        assert snap_a == snap_b
        # total fusion: two full traversals become one
        assert interp_b.stats.node_visits * 2 == interp_a.stats.node_visits
        assert interp_a.globals == interp_b.globals

    def test_truncation_equivalence(self):
        source = """
        _tree_ class N {
            _child_ N* kid;
            int stop = 0;
            int seen1 = 0;
            int seen2 = 0;
            _traversal_ virtual void t1() {}
            _traversal_ virtual void t2() {}
        };
        _tree_ class I : public N {
            _traversal_ void t1() {
                if (this->stop == 1) return;
                this->seen1 = 1;
                this->kid->t1();
            }
            _traversal_ void t2() {
                this->seen2 = 1;
                this->kid->t2();
            }
        };
        _tree_ class L : public N { };
        int main() { N* root = ...; root->t1(); root->t2(); }
        """
        program = parse_program(source)

        def build(p, heap):
            node = Node.new(p, heap, "L")
            # t1 truncates at depth 3; t2 runs to the leaf
            for depth in range(6, 0, -1):
                node = Node.new(
                    p, heap, "I", kid=node, stop=1 if depth == 3 else 0
                )
            return node

        snap_a, snap_b, interp_a, interp_b = run_both(program, build)
        assert snap_a == snap_b
        # the fused traversal keeps running t2 after t1 truncates
        assert interp_b.stats.truncations == interp_a.stats.truncations

    def test_mutation_equivalence(self):
        source = """
        _tree_ class E {
            _child_ E* next;
            int kind = 0;
            int sum = 0;
            _traversal_ virtual void desugar() {}
            _traversal_ virtual void tally() {}
        };
        _tree_ class Cons : public E {
            _traversal_ void desugar() {
                this->next->desugar();
                if (this->next.kind == 7) {
                    delete this->next;
                    this->next = new Nil();
                    this->next.kind = 99;
                }
            }
            _traversal_ void tally() {
                this->sum = this->kind + this->next.kind;
                this->next->tally();
            }
        };
        _tree_ class Nil : public E { };
        int main() { E* root = ...; root->desugar(); root->tally(); }
        """
        program = parse_program(source)

        def build(p, heap):
            node = Node.new(p, heap, "Nil")
            for kind in (7, 2, 7, 3):
                node = Node.new(p, heap, "Cons", kind=kind, next=node)
            return node

        snap_a, snap_b, interp_a, interp_b = run_both(program, build)
        assert snap_a == snap_b


class TestRandomPrograms:
    """Brute differential testing over generated programs and trees."""

    @pytest.mark.parametrize("seed", range(40))
    def test_random_program_equivalence(self, seed):
        rng = random.Random(seed)
        source = random_program_source(rng)
        program = parse_program(source, name=f"rand{seed}")

        def build(p, heap):
            return random_tree(p, heap, random.Random(seed + 1000), max_depth=4)

        snap_a, snap_b, interp_a, interp_b = run_both(program, build)
        assert snap_a == snap_b, f"seed {seed} diverged\n{source}"
        assert interp_a.globals == interp_b.globals, f"seed {seed}:\n{source}"
        assert interp_b.stats.node_visits <= interp_a.stats.node_visits


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_random_program_equivalence_hypothesis(seed):
    rng = random.Random(seed)
    source = random_program_source(rng)
    program = parse_program(source, name=f"hyp{seed}")

    def build(p, heap):
        return random_tree(p, heap, random.Random(seed ^ 0xABCDEF), max_depth=3)

    snap_a, snap_b, interp_a, interp_b = run_both(program, build)
    assert snap_a == snap_b
    assert interp_a.globals == interp_b.globals


def test_seed_765_global_argument_interleaving():
    """Regression for a fusion soundness gap found by hypothesis during
    PR 2: grouping two calls on one receiver evaluates both calls'
    arguments at the fused call site, but unfused execution evaluates a
    later call's arguments (here ``this->c1->f1(G0)``) only after the
    earlier call's subtree — which writes ``G0`` — completed. Grouping
    now refuses to hoist a call site over an earlier member's writes
    (``grouping._argument_hazard``), so fused and unfused runs agree."""
    seed = 765
    rng = random.Random(seed)
    source = random_program_source(rng)
    program = parse_program(source, name=f"hyp{seed}")

    def build(p, heap):
        return random_tree(p, heap, random.Random(seed ^ 0xABCDEF), max_depth=3)

    snap_a, snap_b, interp_a, interp_b = run_both(program, build)
    assert snap_a == snap_b
    assert interp_a.globals == interp_b.globals
