"""Fusion engine structure tests: grouping, memoization, recursion,
type-specific dispatch, cutoffs."""

from repro.frontend import parse_program
from repro.fusion import FusionEngine, FusionLimits, fuse_program
from repro.fusion.fused_ir import GroupCall, GuardedStmt, print_fused_unit

from tests.fixtures import fig1_program, fig2_program


class TestFig1Fusion:
    def test_two_traversals_fuse_into_recursive_unit(self):
        fused = fuse_program(fig1_program())
        key = ("Inner::f1", "Inner::f2")
        assert key in fused.units
        unit = fused.units[key]
        groups = [i for i in unit.body if isinstance(i, GroupCall)]
        assert len(groups) == 1
        # the child group bundles f3 and f4
        assert [c.method_name for c in groups[0].calls] == ["f3", "f4"]
        # f3+f4 unit is recursive: its own group dispatches back to itself
        inner_key = ("Inner::f3", "Inner::f4")
        inner_unit = fused.units[inner_key]
        inner_group = next(
            i for i in inner_unit.body if isinstance(i, GroupCall)
        )
        assert inner_group.dispatch["Inner"] is inner_unit

    def test_dependence_preserved_in_order(self):
        fused = fuse_program(fig1_program())
        unit = fused.units[("Inner::f1", "Inner::f2")]
        stmts = [i for i in unit.body if isinstance(i, GuardedStmt)]
        # s1 (member 0, writes x) must precede s2 (member 1, reads x)
        member_order = [s.member for s in stmts]
        assert member_order == sorted(member_order)

    def test_memoization_shares_units(self):
        engine = FusionEngine(fig1_program())
        fused = engine.fuse_program()
        # Node::f3/Node::f4 (empty bodies, reached from dispatch on Leaf
        # and on Node) must be one unit, not two
        empty_keys = [k for k in fused.units if k == ("Node::f3", "Node::f4")]
        assert len(empty_keys) == 1


class TestFig2Fusion:
    def test_type_specific_units_exist(self):
        fused = fuse_program(fig2_program())
        assert ("TextBox::computeWidth", "TextBox::computeHeight") in fused.units
        assert ("Group::computeWidth", "Group::computeHeight") in fused.units
        assert (
            "Element::computeWidth",
            "Element::computeHeight",
        ) in fused.units  # End's inherited no-ops

    def test_groups_formed_on_both_children(self):
        fused = fuse_program(fig2_program())
        unit = fused.units[("Group::computeWidth", "Group::computeHeight")]
        groups = [i for i in unit.body if isinstance(i, GroupCall)]
        receivers = sorted(g.receiver.child.name for g in groups)
        assert receivers == ["Content", "Next"]
        for group in groups:
            assert len(group.calls) == 2  # width+height fused on each child

    def test_entry_dispatch_covers_concrete_types(self):
        fused = fuse_program(fig2_program())
        assert len(fused.entry_groups) == 1
        dispatch = fused.entry_groups[0].dispatch
        assert set(dispatch) == {"TextBox", "Group", "End"}

    def test_print_fused_unit_readable(self):
        fused = fuse_program(fig2_program())
        unit = fused.units[("TextBox::computeWidth", "TextBox::computeHeight")]
        text = print_fused_unit(unit)
        assert "active_flags" in text
        assert "__stub" in text


class TestCutoffs:
    def test_max_sequence_chunks_entry(self):
        source = """
        _tree_ class N {
            _child_ N* kid;
            int v = 0;
            _traversal_ virtual void f() {}
        };
        _tree_ class I : public N {
            _traversal_ void f() { this->kid->f(); this->v = this->v + 1; }
        };
        _tree_ class L : public N { };
        int main() {
            N* root = ...;
            root->f(); root->f(); root->f(); root->f(); root->f();
        }
        """
        program = parse_program(source)
        fused = fuse_program(program, limits=FusionLimits(max_sequence=2))
        assert len(fused.entry_groups) == 3  # 2 + 2 + 1
        widths = [u.width for u in fused.units.values()]
        assert max(widths) <= 2

    def test_max_repeat_limits_group_multiplicity(self):
        source = """
        _tree_ class N {
            _child_ N* kid;
            int v = 0;
            _traversal_ virtual void f() {}
        };
        _tree_ class I : public N {
            _traversal_ void f() {
                this->kid->f();
                this->kid->f();
            }
        };
        _tree_ class L : public N { };
        int main() { N* root = ...; root->f(); }
        """
        program = parse_program(source)
        fused = fuse_program(program, limits=FusionLimits(max_repeat=2))
        # Each level doubles the calls; max_repeat caps any one group at 2
        # occurrences of I::f, so unit widths stay bounded.
        assert all(u.width <= 2 for u in fused.units.values())

    def test_fusion_terminates_on_amplifying_recursion(self):
        # two calls on the same child per level with two traversals at the
        # root would amplify without cutoffs (paper §4's motivation)
        source = """
        _tree_ class N {
            _child_ N* kid;
            int v = 0;
            _traversal_ virtual void f() {}
            _traversal_ virtual void g() {}
        };
        _tree_ class I : public N {
            _traversal_ void f() { this->kid->f(); this->kid->g(); }
            _traversal_ void g() { this->kid->g(); this->kid->f(); }
        };
        _tree_ class L : public N { };
        int main() { N* root = ...; root->f(); root->g(); }
        """
        program = parse_program(source)
        fused = fuse_program(
            program, limits=FusionLimits(max_sequence=4, max_repeat=2)
        )
        assert fused.unit_count < 100
        assert all(u.width <= 4 for u in fused.units.values())


class TestBlockedFusion:
    def test_conflicting_calls_stay_separate(self):
        # The classic unfusable pair: an upward reduction (a computed
        # bottom-up) feeding a downward distribution (b pushed top-down
        # using the child's a). p2 at the child needs kid.b, which the
        # parent's p2 computes from kid.a, which p1-at-the-child computes:
        # p1@kid < s2@parent < p2@kid. Grouping the two child calls would
        # contract that chain into a cycle, so Grafter must keep them
        # separate (partial fusion only).
        source = """
        _tree_ class N {
            _child_ N* kid;
            int a = 0;
            int b = 0;
            _traversal_ virtual void p1() {}
            _traversal_ virtual void p2() {}
        };
        _tree_ class I : public N {
            _traversal_ void p1() {
                this->kid->p1();
                this->a = this->kid.a + 1;
            }
            _traversal_ void p2() {
                this->kid.b = this->b + this->kid.a;
                this->kid->p2();
            }
        };
        _tree_ class L : public N { };
        int main() { N* root = ...; root->p1(); root->p2(); }
        """
        program = parse_program(source)
        fused = fuse_program(program)
        unit = fused.units[("I::p1", "I::p2")]
        groups = [i for i in unit.body if isinstance(i, GroupCall)]
        assert len(groups) == 2
        assert all(len(g.calls) == 1 for g in groups)
