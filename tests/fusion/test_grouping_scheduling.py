"""Direct unit tests for grouping (contraction-acyclicity) and the
topological scheduler."""

from repro.analysis import AnalysisContext, build_dependence_graph
from repro.frontend import parse_program
from repro.fusion.grouping import (
    FusionLimits,
    Group,
    _contracted_has_cycle,
    greedy_group,
    group_key,
)
from repro.fusion.scheduling import schedule


def _graph(source, seq):
    program = parse_program(source)
    ctx = AnalysisContext(program)
    members = [program.resolve_method(t, m) for t, m in seq]
    return build_dependence_graph(ctx, members)


INDEPENDENT = """
_tree_ class N {
    _child_ N* kid;
    int a = 0;
    int b = 0;
    _traversal_ virtual void p1() {}
    _traversal_ virtual void p2() {}
};
_tree_ class I : public N {
    _traversal_ void p1() { this->kid->p1(); this->a = 1; }
    _traversal_ void p2() { this->kid->p2(); this->b = 2; }
};
_tree_ class L : public N { };
int main() { N* root = ...; root->p1(); root->p2(); }
"""


class TestContraction:
    def test_identity_assignment_never_cycles(self):
        graph = _graph(INDEPENDENT, [("I", "p1"), ("I", "p2")])
        assignment = {v.index: v.index for v in graph.vertices}
        assert not _contracted_has_cycle(graph, assignment)

    def test_contracting_dependent_endpoints_with_middle_cycles(self):
        graph = _graph(INDEPENDENT, [("I", "p1"), ("I", "p2")])
        # force an artificial chain 0 -> 1 -> 2 and contract {0, 2}
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assignment = {v.index: v.index for v in graph.vertices}
        assignment[2] = 0
        assert _contracted_has_cycle(graph, assignment)

    def test_contracting_adjacent_dependents_is_fine(self):
        graph = _graph(INDEPENDENT, [("I", "p1"), ("I", "p2")])
        graph.add_edge(0, 1)
        assignment = {v.index: v.index for v in graph.vertices}
        assignment[1] = 0  # direct edge inside the group: no cycle
        assert not _contracted_has_cycle(graph, assignment)


class TestGreedyGroup:
    def test_same_receiver_calls_group(self):
        graph = _graph(INDEPENDENT, [("I", "p1"), ("I", "p2")])
        groups, _ = greedy_group(graph, FusionLimits())
        call_groups = [g for g in groups if len(g.vertex_indices) == 2]
        assert len(call_groups) == 1

    def test_group_keys_distinguish_receivers(self):
        source = """
        _tree_ class N {
            _child_ N* left;
            _child_ N* right;
            int a = 0;
            _traversal_ virtual void p() {}
        };
        _tree_ class I : public N {
            _traversal_ void p() {
                this->left->p();
                this->right->p();
            }
        };
        _tree_ class L : public N { };
        int main() { N* root = ...; root->p(); root->p(); }
        """
        graph = _graph(source, [("I", "p"), ("I", "p")])
        keys = {group_key(v) for v in graph.vertices if v.is_call}
        assert len(keys) == 2  # left vs right

    def test_max_sequence_cutoff_respected(self):
        source = """
        _tree_ class N {
            _child_ N* kid;
            int a = 0;
            _traversal_ virtual void p() {}
        };
        _tree_ class I : public N {
            _traversal_ void p() { this->kid->p(); this->a = this->a + 1; }
        };
        _tree_ class L : public N { };
        int main() { N* root = ...; root->p(); }
        """
        program = parse_program(source)
        ctx = AnalysisContext(program)
        method = program.resolve_method("I", "p")
        graph = build_dependence_graph(ctx, [method] * 6)
        groups, _ = greedy_group(graph, FusionLimits(max_sequence=3))
        call_groups = [g for g in groups if g.receiver_key.startswith("call")]
        assert all(len(g.vertex_indices) <= 3 for g in call_groups)

    def test_max_repeat_cutoff_respected(self):
        source = """
        _tree_ class N {
            _child_ N* kid;
            int a = 0;
            _traversal_ virtual void p() {}
        };
        _tree_ class I : public N {
            _traversal_ void p() { this->kid->p(); this->a = this->a + 1; }
        };
        _tree_ class L : public N { };
        int main() { N* root = ...; root->p(); }
        """
        program = parse_program(source)
        ctx = AnalysisContext(program)
        method = program.resolve_method("I", "p")
        graph = build_dependence_graph(ctx, [method] * 6)
        groups, _ = greedy_group(graph, FusionLimits(max_repeat=2))
        for group in groups:
            names = [
                call.method_name
                for index in group.vertex_indices
                for call in graph.vertices[index].nested_calls
            ]
            assert names.count("p") <= 2


class TestScheduler:
    def test_schedule_covers_all_vertices_once(self):
        graph = _graph(INDEPENDENT, [("I", "p1"), ("I", "p2")])
        groups, assignment = greedy_group(graph, FusionLimits())
        order = schedule(graph, groups, assignment)
        flat = [i for unit in order for i in unit]
        assert sorted(flat) == [v.index for v in graph.vertices]

    def test_schedule_respects_dependences(self):
        graph = _graph(INDEPENDENT, [("I", "p1"), ("I", "p2")])
        groups, assignment = greedy_group(graph, FusionLimits())
        order = schedule(graph, groups, assignment)
        position = {}
        for slot, unit in enumerate(order):
            for index in unit:
                position[index] = slot
        for src, dsts in graph.succ.items():
            for dst in dsts:
                assert position[src] <= position[dst]

    def test_schedule_prefers_source_order_for_independents(self):
        graph = _graph(INDEPENDENT, [("I", "p1"), ("I", "p2")])
        groups, assignment = greedy_group(graph, FusionLimits())
        order = schedule(graph, groups, assignment)
        # the two assigns (a=1 from m0, b=2 from m1) are independent and
        # must keep source order: m0's before m1's
        singles = [unit[0] for unit in order if len(unit) == 1]
        members = [graph.vertices[i].member for i in singles]
        assert members == sorted(members)

    def test_grouped_calls_are_adjacent(self):
        graph = _graph(INDEPENDENT, [("I", "p1"), ("I", "p2")])
        groups, assignment = greedy_group(graph, FusionLimits())
        order = schedule(graph, groups, assignment)
        group_units = [unit for unit in order if len(unit) > 1]
        assert group_units  # the two calls fused into one schedule slot
