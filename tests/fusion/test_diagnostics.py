"""Tests for the fusion diagnostics (blocking-chain explanations)."""

from repro.frontend import parse_program
from repro.fusion.diagnostics import explain_sequence

BLOCKED_SOURCE = """
_tree_ class N {
    _child_ N* kid;
    int a = 0;
    int b = 0;
    _traversal_ virtual void p1() {}
    _traversal_ virtual void p2() {}
};
_tree_ class I : public N {
    _traversal_ void p1() {
        this->kid->p1();
        this->a = this->kid.a + 1;
    }
    _traversal_ void p2() {
        this->kid.b = this->b + this->kid.a;
        this->kid->p2();
    }
};
_tree_ class L : public N { };
int main() { N* root = ...; root->p1(); root->p2(); }
"""

FUSIBLE_SOURCE = """
_tree_ class N {
    _child_ N* kid;
    int a = 0;
    int b = 0;
    _traversal_ virtual void p1() {}
    _traversal_ virtual void p2() {}
};
_tree_ class I : public N {
    _traversal_ void p1() { this->kid->p1(); this->a = 1; }
    _traversal_ void p2() { this->kid->p2(); this->b = 2; }
};
_tree_ class L : public N { };
int main() { N* root = ...; root->p1(); root->p2(); }
"""


def _explain(source):
    program = parse_program(source)
    members = [
        program.resolve_method("I", call.method_name)
        for call in program.entry
    ]
    return explain_sequence(program, members)


class TestDiagnostics:
    def test_blocked_pair_reported_with_chain(self):
        explanation = _explain(BLOCKED_SOURCE)
        assert len(explanation.blocked) == 1
        pair = explanation.blocked[0]
        assert "kid" in pair.receiver
        # the witness chain passes through the aggregating statement
        assert pair.chain, "expected a blocking chain"
        chain_text = " ".join(pair.chain)
        # the chain threads through the statement reading kid->a
        assert "kid->a" in chain_text

    def test_chain_endpoints_are_group_members(self):
        explanation = _explain(BLOCKED_SOURCE)
        pair = explanation.blocked[0]
        assert pair.chain[0] in pair.first_group + pair.second_group
        assert pair.chain[-1] in pair.first_group + pair.second_group

    def test_fusible_sequence_reports_no_blocks(self):
        explanation = _explain(FUSIBLE_SOURCE)
        assert explanation.blocked == []
        # both calls landed in one group
        assert any(len(group) == 2 for group in explanation.groups)

    def test_describe_is_readable(self):
        text = _explain(BLOCKED_SOURCE).describe()
        assert "sequence: I::p1 + I::p2" in text
        assert "could not fuse" in text
        assert "blocking chain" in text

    def test_describe_fusible(self):
        text = _explain(FUSIBLE_SOURCE).describe()
        assert "no blocked groupings" in text
