"""Tests for §3.5's conditional-call elimination (push_conditions)."""

import pytest

from repro.errors import FusionError
from repro.frontend import parse_program
from repro.fusion import fuse_program
from repro.fusion.transforms import push_conditions
from repro.ir.stmts import If, TraverseStmt, contains_traverse, walk_stmts
from repro.ir.validate import LanguageMode, validate_program
from repro.runtime import Heap, Interpreter, Node

SOURCE = """
_tree_ class N {
    _child_ N* kid;
    int flag = 0;
    int seen = 0;
    _traversal_ virtual void go(int depth) {}
};
_tree_ class I : public N {
    _traversal_ void go(int depth) {
        this->seen = depth;
        if (this->flag == 1) {
            this->kid->go(depth + 1);
        }
    }
};
_tree_ class L : public N { };
int main() { N* root = ...; root->go(0); }
"""


def _chain(program, heap, flags):
    node = Node.new(program, heap, "L")
    for flag in reversed(flags):
        node = Node.new(program, heap, "I", kid=node, flag=flag)
    return node


def _run(program, build, fused=None):
    heap = Heap(program)
    root = build(program, heap)
    interp = Interpreter(program, heap)
    if fused is None:
        interp.run_entry(root)
    else:
        interp.run_fused(fused, root)
    return root, interp


class TestPushConditions:
    def test_rewritten_program_is_valid_grafter(self):
        program = parse_program(SOURCE, mode=LanguageMode.TREEFUSER)
        push_conditions(program)
        validate_program(program, LanguageMode.GRAFTER)
        body = program.tree_types["I"].methods["go"].body
        # no traverse statements remain under any `if`
        for stmt in body:
            if isinstance(stmt, If):
                assert not contains_traverse(stmt)

    def test_wrapper_created_with_guard_parameter(self):
        program = parse_program(SOURCE, mode=LanguageMode.TREEFUSER)
        push_conditions(program)
        wrapper = program.tree_types["N"].methods["go__when"]
        assert wrapper.params[0].name == "__go"
        assert wrapper.params[1].name == "depth"
        assert wrapper.virtual

    def test_semantics_preserved(self):
        # original (conditional calls executed directly by the interpreter)
        original = parse_program(SOURCE, mode=LanguageMode.TREEFUSER)
        flags = [1, 1, 0, 1]
        root_a, _ = _run(original, lambda p, h: _chain(p, h, flags))
        # transformed
        transformed = parse_program(SOURCE, mode=LanguageMode.TREEFUSER)
        push_conditions(transformed)
        root_b, _ = _run(transformed, lambda p, h: _chain(p, h, flags))
        seen_a = [n.get("seen") for n in root_a.walk(original)]
        seen_b = [n.get("seen") for n in root_b.walk(transformed)]
        assert seen_a == seen_b
        # the guard stopped recursion at the flag=0 node
        assert seen_a[:3] == [0, 1, 2]
        assert seen_a[3] == 0  # never visited past the guard

    def test_transformed_program_fuses(self):
        source = SOURCE.replace(
            "root->go(0);", "root->go(0);\n    root->go(100);"
        )
        program = parse_program(source, mode=LanguageMode.TREEFUSER)
        push_conditions(program)
        fused = fuse_program(program)
        flags = [1, 1, 1, 0, 1]
        root_a, stats_a = _run(program, lambda p, h: _chain(p, h, flags))
        root_b, stats_b = _run(
            program, lambda p, h: _chain(p, h, flags), fused=fused
        )
        assert root_a.snapshot(program) == root_b.snapshot(program)
        assert stats_b.stats.node_visits < stats_a.stats.node_visits

    def test_instruction_overhead_exists(self):
        """The paper: pushing conditions 'introduces instruction
        overhead' — the guard call visits the child even when false."""
        original = parse_program(SOURCE, mode=LanguageMode.TREEFUSER)
        transformed = parse_program(SOURCE, mode=LanguageMode.TREEFUSER)
        push_conditions(transformed)
        flags = [1, 0, 1, 1]
        _, interp_a = _run(original, lambda p, h: _chain(p, h, flags))
        _, interp_b = _run(transformed, lambda p, h: _chain(p, h, flags))
        assert interp_b.stats.node_visits >= interp_a.stats.node_visits
        assert interp_b.stats.instructions > interp_a.stats.instructions

    def test_calls_in_both_branches_rejected(self):
        source = """
        _tree_ class N {
            _child_ N* kid;
            int flag = 0;
            _traversal_ virtual void go() {}
        };
        _tree_ class I : public N {
            _traversal_ void go() {
                if (this->flag == 1) { this->kid->go(); }
                else { this->kid->go(); }
            }
        };
        _tree_ class L : public N { };
        """
        program = parse_program(source, mode=LanguageMode.TREEFUSER)
        with pytest.raises(FusionError, match="both branches"):
            push_conditions(program)

    def test_simple_statements_stay_conditional(self):
        source = """
        _tree_ class N {
            _child_ N* kid;
            int flag = 0;
            int touched = 0;
            _traversal_ virtual void go() {}
        };
        _tree_ class I : public N {
            _traversal_ void go() {
                if (this->flag == 1) {
                    this->touched = 1;
                    this->kid->go();
                }
            }
        };
        _tree_ class L : public N { };
        """
        program = parse_program(source, mode=LanguageMode.TREEFUSER)
        push_conditions(program)
        body = program.tree_types["I"].methods["go"].body
        # first statement: the residual guarded simple statement
        assert isinstance(body[0], If)
        assert not contains_traverse(body[0])
        # second: the unconditional guarded call
        assert isinstance(body[1], TraverseStmt)
        assert body[1].method_name == "go__when"
