"""Tracing through the compile pipeline: one trace per compile with
pass, unit, and storage-tier spans, forced by ``CompileOptions(trace=
True)`` without flipping the process tracer on."""

from repro import obs
from repro.pipeline import (
    CompileCache,
    CompileOptions,
    compile as pipeline_compile,
)

from tests.fixtures import FIG2_SOURCE


def spans_of_last_trace():
    tracer = obs.get_tracer()
    trace_id = tracer.trace_ids()[-1]
    return tracer.spans(trace_id)


def test_traced_compile_records_pass_and_unit_spans():
    options = CompileOptions(trace=True, use_cache=False)
    result = pipeline_compile(FIG2_SOURCE, options=options, cache=None)
    assert not result.cache_hit
    spans = spans_of_last_trace()
    names = {record["name"] for record in spans}
    assert "pipeline.compile" in names
    # every pipeline stage produced a span under the compile root
    pass_names = {
        n.split(".", 1)[1] for n in names if n.startswith("pass.")
    }
    assert {"parse", "fusion", "emit"} <= pass_names
    assert any(n.startswith("unit.") for n in names)
    # one trace, fully connected: every parent id resolves in-trace
    ids = {record["span_id"] for record in spans}
    for record in spans:
        if record["parent_id"] is not None:
            assert record["parent_id"] in ids
    roots = [r for r in spans if r["parent_id"] is None]
    assert [r["name"] for r in roots] == ["pipeline.compile"]


def test_compile_root_span_carries_cache_outcome():
    cache = CompileCache()
    options = CompileOptions(trace=True)
    pipeline_compile(FIG2_SOURCE, options=options, cache=cache)
    cold_root = next(
        r for r in spans_of_last_trace()
        if r["name"] == "pipeline.compile"
    )
    assert cold_root["attrs"]["cache_hit"] is False
    assert cold_root["attrs"]["passes"] > 0
    warm = pipeline_compile(FIG2_SOURCE, options=options, cache=cache)
    assert warm.cache_hit
    warm_spans = spans_of_last_trace()
    warm_root = next(
        r for r in warm_spans if r["name"] == "pipeline.compile"
    )
    assert warm_root["attrs"]["cache_hit"] is True
    # the whole-result lookup span names the serving tier
    lookup = next(
        r for r in warm_spans if r["name"] == "storage.result"
    )
    assert lookup["attrs"]["hit"] is True
    assert lookup["attrs"]["tier"] == "memory"


def test_storage_miss_span_on_cold_compile():
    cache = CompileCache()
    pipeline_compile(
        FIG2_SOURCE, options=CompileOptions(trace=True), cache=cache
    )
    spans = spans_of_last_trace()
    lookups = [r for r in spans if r["name"] == "storage.result"]
    assert lookups and all(
        r["attrs"]["hit"] is False for r in lookups
    )
    # per-unit lookups also traced, attributed to their pass
    unit_lookups = [r for r in spans if r["name"] == "storage.unit"]
    assert unit_lookups
    assert all("pass_name" in r["attrs"] for r in unit_lookups)


def test_untraced_compile_records_nothing_new():
    tracer = obs.get_tracer()
    before = len(tracer.spans())
    pipeline_compile(
        FIG2_SOURCE, options=CompileOptions(use_cache=False), cache=None
    )
    assert len(tracer.spans()) == before
