"""The span tracer: nesting, sampling, cross-context propagation,
collection sinks, and the bounded ring buffer."""

import pickle

import pytest

from repro import obs
from repro.obs.trace import Tracer


@pytest.fixture
def tracer():
    """A private tracer — tests never touch the process tracer's
    switch, so instrumented code elsewhere in the suite is unaffected."""
    t = Tracer(capacity=64)
    t.configure(enabled=True, sample=1.0)
    return t


def test_disabled_tracer_returns_noop_span():
    t = Tracer()
    span = t.span("anything")
    assert span is obs.NOOP_SPAN
    assert span.recorded is False
    # the noop is inert: attributes and context management do nothing
    with span as s:
        s.set(key="value")
    assert span.context is None
    assert t.spans() == []


def test_force_records_despite_disabled():
    t = Tracer()
    with t.span("forced", force=True) as span:
        assert span.recorded
    records = t.spans()
    assert [r["name"] for r in records] == ["forced"]
    assert records[0]["parent_id"] is None


def test_nesting_assigns_parent_and_shares_trace(tracer):
    with tracer.span("outer") as outer:
        with tracer.span("middle") as middle:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == middle.span_id
            assert middle.parent_id == outer.span_id
    by_name = {r["name"]: r for r in tracer.spans()}
    assert set(by_name) == {"outer", "middle", "inner"}
    # children finish (and buffer) before parents
    assert [r["name"] for r in tracer.spans()] == [
        "inner", "middle", "outer",
    ]
    assert by_name["outer"]["parent_id"] is None


def test_span_attrs_and_duration_exported(tracer):
    with tracer.span("op", width=3) as span:
        span.set(hit=True)
    record = tracer.spans()[0]
    assert record["attrs"] == {"width": 3, "hit": True}
    assert record["duration"] >= 0.0
    assert record["start"] > 0.0


def test_exception_stamps_error_attr(tracer):
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    record = tracer.spans()[0]
    assert record["attrs"]["error"] == "ValueError"


def test_sampling_half_records_exactly_every_other_root(tracer):
    tracer.configure(sample=0.5)
    recorded = [tracer.span(f"r{i}").recorded for i in range(8)]
    assert recorded.count(True) == 4
    # deterministic accumulator, not a PRNG: strict alternation
    # (the accumulator crosses 1.0 on the second root first)
    assert recorded == [False, True] * 4


def test_children_of_recorded_root_ignore_sampling(tracer):
    tracer.configure(sample=0.5)
    assert not tracer.span("unsampled").recorded  # burns the first slot
    with tracer.span("root") as root:
        assert root.recorded
        # every descendant of a recorded root records, regardless of
        # what the root sampler would have said
        for _ in range(4):
            with tracer.span("child") as child:
                assert child.recorded
    assert len(tracer.spans()) == 5


def test_context_pickles_and_reparents(tracer):
    with tracer.span("parent") as parent:
        ctx = parent.context
    wire = pickle.loads(pickle.dumps(ctx))
    assert wire == (parent.trace_id, parent.span_id)
    with tracer.span_from(wire, "remote-child") as child:
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id


def test_span_from_none_falls_back_to_ambient(tracer):
    with tracer.span("root") as root:
        with tracer.span_from(None, "child") as child:
            assert child.parent_id == root.span_id


def test_collect_diverts_spans_from_ring(tracer):
    with tracer.collect() as bucket:
        with tracer.span("diverted", force=True):
            pass
    assert [r["name"] for r in bucket] == ["diverted"]
    assert tracer.spans() == []  # nothing leaked into the ring
    tracer.ingest(bucket)
    assert [r["name"] for r in tracer.spans()] == ["diverted"]


def test_ring_capacity_keeps_newest(tracer):
    tracer.configure(capacity=4)
    for i in range(10):
        with tracer.span(f"s{i}"):
            pass
    assert [r["name"] for r in tracer.spans()] == [
        "s6", "s7", "s8", "s9",
    ]


def test_spans_filter_by_trace_and_trace_ids(tracer):
    with tracer.span("first") as a:
        pass
    with tracer.span("second") as b:
        pass
    assert tracer.trace_ids() == [a.trace_id, b.trace_id]
    assert [r["name"] for r in tracer.spans(a.trace_id)] == ["first"]
    assert tracer.spans("no-such-trace") == []


def test_module_level_current_context_tracks_active_span():
    # the module API rides the process tracer; force avoids flipping
    # its enabled switch
    assert obs.current_context() is None
    with obs.span("root", force=True) as root:
        assert obs.current_context() == root.context
    assert obs.current_context() is None
