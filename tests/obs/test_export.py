"""Trace exporters: Chrome trace_event JSON, JSONL round-trips, and
the parent/child tree renderer."""

import json

from repro.obs.export import (
    read_jsonl,
    render_tree,
    span_tree,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.trace import Tracer


def recorded_spans():
    tracer = Tracer()
    with tracer.span("root", force=True, workload="render") as root:
        with tracer.span("child-a"):
            pass
        with tracer.span("child-b") as b:
            with tracer.span("grandchild"):
                pass
    return tracer.spans(), root, b


def test_chrome_trace_shape():
    spans, root, _ = recorded_spans()
    doc = to_chrome_trace(spans)
    events = doc["traceEvents"]
    assert len(events) == 4
    assert doc["displayTimeUnit"] == "ms"
    # complete events in microseconds, sorted by start
    assert all(e["ph"] == "X" for e in events)
    assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
    root_event = next(e for e in events if e["name"] == "root")
    assert root_event["args"]["trace_id"] == root.trace_id
    assert root_event["args"]["workload"] == "render"
    assert root_event["dur"] >= 0


def test_chrome_trace_file_is_loadable_json(tmp_path):
    spans, _, _ = recorded_spans()
    path = tmp_path / "trace.json"
    write_chrome_trace(spans, str(path))
    loaded = json.loads(path.read_text())
    assert len(loaded["traceEvents"]) == len(spans)


def test_jsonl_round_trip(tmp_path):
    spans, _, _ = recorded_spans()
    path = tmp_path / "spans.jsonl"
    write_jsonl(spans, str(path))
    assert read_jsonl(str(path)) == spans


def test_span_tree_reassembles_hierarchy():
    spans, root, b = recorded_spans()
    roots = span_tree(spans)
    assert len(roots) == 1
    node = roots[0]
    assert node["span"]["span_id"] == root.span_id
    children = [c["span"]["name"] for c in node["children"]]
    assert children == ["child-a", "child-b"]
    b_node = next(
        c for c in node["children"]
        if c["span"]["span_id"] == b.span_id
    )
    assert [c["span"]["name"] for c in b_node["children"]] == [
        "grandchild"
    ]


def test_orphans_become_roots():
    spans, root, _ = recorded_spans()
    # drop the root: its children have an unresolvable parent
    orphaned = [s for s in spans if s["span_id"] != root.span_id]
    roots = span_tree(orphaned)
    assert {n["span"]["name"] for n in roots} == {
        "child-a", "child-b",
    }


def test_render_tree_indents_and_reports_ms():
    spans, _, _ = recorded_spans()
    text = render_tree(spans)
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("root")
    assert "  child-a" in text
    assert "    grandchild" in text
    assert all("ms" in line for line in lines)
    assert "workload=render" in lines[0]


def test_render_tree_truncates_attr_overflow():
    tracer = Tracer()
    with tracer.span("busy", force=True, a=1, b=2, c=3):
        pass
    text = render_tree(tracer.spans(), max_attrs=2)
    assert "a=1, b=2, ..." in text
    assert "c=3" not in text
