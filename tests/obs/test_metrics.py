"""The metrics registry: typed instruments, label families, legacy
stats() views, and the Prometheus text exposition."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    # a private registry per test — the process REGISTRY holds the
    # real subsystems' instruments and must not be reset
    return MetricsRegistry()


def test_counter_only_goes_up():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge()
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value == 13.0


def test_histogram_buckets_and_summary():
    h = Histogram(buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        h.observe(value)
    assert h.count == 4
    assert h.sum == pytest.approx(6.05)
    cumulative = h.cumulative()
    assert cumulative == [(0.1, 1), (1.0, 3), (float("inf"), 4)]
    summary = h.summary()
    assert summary["count"] == 4
    assert summary["mean"] == pytest.approx(6.05 / 4)


def test_labelled_family_children_are_independent(registry):
    family = registry.counter("hits", labels=("tier",))
    family.labels(tier="memory").inc()
    family.labels(tier="memory").inc()
    family.labels(tier="disk").inc()
    assert family.labels(tier="memory").value == 2
    assert family.labels(tier="disk").value == 1


def test_label_set_is_validated(registry):
    family = registry.counter("hits", labels=("tier",))
    with pytest.raises(ValueError):
        family.labels(wrong="x")
    with pytest.raises(ValueError):
        family.labels()  # missing the tier label entirely


def test_registration_is_idempotent_but_kind_checked(registry):
    first = registry.counter("requests", "help text")
    again = registry.counter("requests")
    assert first is again
    with pytest.raises(ValueError):
        registry.gauge("requests")
    with pytest.raises(ValueError):
        registry.counter("requests", labels=("status",))


def test_views_flatten_to_numeric_leaves(registry):
    registry.register_view(
        "legacy",
        lambda: {
            "hits": 3,
            "ratio": 0.5,
            "alive": True,
            "label": "memory",        # strings dropped
            "recent": [1, 2, 3],       # lists dropped
            "nested": {"loads": 7},
        },
    )
    snapshot = registry.snapshot()
    assert snapshot["legacy_hits"] == 3
    assert snapshot["legacy_ratio"] == 0.5
    assert snapshot["legacy_alive"] == 1
    assert snapshot["legacy_nested_loads"] == 7
    assert "legacy_label" not in snapshot
    assert "legacy_recent" not in snapshot


def test_broken_view_does_not_break_snapshot(registry):
    registry.register_view("bad", lambda: 1 / 0)
    registry.register_view("good", lambda: {"n": 1})
    assert registry.snapshot() == {"good_n": 1}
    registry.unregister_view("good")
    assert registry.snapshot() == {}


def test_snapshot_renders_labelled_keys(registry):
    registry.counter("c", labels=("k",)).labels(k="v").inc()
    registry.histogram("h").observe(0.2)
    snapshot = registry.snapshot()
    assert snapshot["c{k=v}"] == 1
    assert snapshot["h"]["count"] == 1


def test_prometheus_rendering_parses(registry):
    registry.counter(
        "repro_requests_total", "requests", labels=("status",)
    ).labels(status="ok").inc(3)
    registry.gauge("repro_depth").set(2)
    registry.histogram("repro_seconds", buckets=(0.1, 1.0)).observe(0.5)
    registry.register_view("svc", lambda: {"uptime": 1.5})
    text = registry.render_prometheus()
    lines = [
        line for line in text.splitlines()
        if line and not line.startswith("#")
    ]
    parsed = {}
    for line in lines:
        name, value = line.rsplit(" ", 1)
        parsed[name] = float(value)
    assert parsed['repro_requests_total{status="ok"}'] == 3.0
    assert parsed["repro_depth"] == 2.0
    assert parsed['repro_seconds_bucket{le="0.1"}'] == 0.0
    assert parsed['repro_seconds_bucket{le="1.0"}'] == 1.0
    assert parsed['repro_seconds_bucket{le="+Inf"}'] == 1.0
    assert parsed["repro_seconds_sum"] == 0.5
    assert parsed["repro_seconds_count"] == 1.0
    assert parsed["svc_uptime"] == 1.5
    # HELP/TYPE metadata precedes the samples
    assert "# HELP repro_requests_total requests" in text
    assert "# TYPE repro_seconds histogram" in text


def test_process_registry_carries_subsystem_instruments():
    # importing the instrumented modules registers their families in
    # the process registry; spot-check the names the scrape exposes
    import repro.pipeline.manager  # noqa: F401
    import repro.service.executor  # noqa: F401
    import repro.storage.tiered  # noqa: F401
    from repro.obs import REGISTRY

    text = REGISTRY.render_prometheus()
    for name in (
        "repro_pass_seconds",
        "repro_pass_units_total",
        "repro_storage_lookups_total",
        "repro_exec_requests_total",
        "repro_exec_trees_total",
        "repro_exec_waves_total",
        "repro_exec_tree_seconds",
    ):
        assert f"# TYPE {name}" in text
