"""Random Grafter program + tree generators for differential testing.

The soundness claim of the paper is that fused and unfused executions are
observationally identical. We test it the strong way: generate random
valid programs (heterogeneous hierarchies, virtual methods, truncation,
topology mutation, globals, parameters), generate random trees, run both
executions, and compare full tree snapshots and global states.

Programs are generated as *source text* and parsed — exercising the whole
pipeline exactly like a user would.

``hazards=True`` additionally injects the bug-class shapes from
:func:`repro.fuzz.generators.hazard_statements` (global-write followed by
a global-reading call argument — the seed-765 class — and truncation
after mutation). The flag defaults to off and its extra draws happen
*after* every existing draw for a method body, so the pinned seeds in
``tests/fusion/test_soundness.py`` keep producing byte-identical
programs.
"""

from __future__ import annotations

import random

from repro.fuzz.generators import hazard_statements
from repro.runtime import Heap, Node

# data fields available on the base type
_DATA = ["d0", "d1", "d2"]
_CHILDREN = ["c0", "c1"]
_METHODS = ["f0", "f1", "f2"]
_CONCRETE = ["A", "B", "Leaf"]


def random_program_source(
    rng: random.Random, hazards: bool = False
) -> str:
    """A random valid Grafter program over a 4-type hierarchy."""
    lines = ["int G0;", "int G1;"]
    lines.append("_abstract_ _tree_ class N {")
    for child in _CHILDREN:
        lines.append(f"    _child_ N* {child};")
    for data in _DATA:
        lines.append(f"    int {data} = 0;")
    for method in _METHODS:
        lines.append(
            f"    _traversal_ virtual void {method}(int p0) {{}}"
        )
    lines.append("};")
    for type_name in ("A", "B"):
        lines.append(f"_tree_ class {type_name} : public N {{")
        extra = f"x{type_name}"
        lines.append(f"    int {extra} = 0;")
        for method in _METHODS:
            if rng.random() < 0.8:
                body = _random_body(rng, extra, hazards=hazards)
                lines.append(
                    f"    _traversal_ void {method}(int p0) {{"
                )
                lines.extend(f"        {stmt}" for stmt in body)
                lines.append("    }")
        lines.append("};")
    lines.append("_tree_ class Leaf : public N { };")
    lines.append("int main() {")
    lines.append("    N* root = ...;")
    n_calls = rng.randint(2, 3)
    for _ in range(n_calls):
        method = rng.choice(_METHODS)
        lines.append(f"    root->{method}({rng.randint(0, 5)});")
    lines.append("}")
    return "\n".join(lines)


def _random_expr(rng: random.Random, extra: str, depth: int = 0) -> str:
    atoms = [
        f"this->{rng.choice(_DATA)}",
        f"this->{extra}",
        "p0",
        str(rng.randint(-3, 9)),
        "G0",
    ]
    if depth >= 2 or rng.random() < 0.4:
        return rng.choice(atoms)
    op = rng.choice(["+", "-", "*"])
    return (
        f"({_random_expr(rng, extra, depth + 1)} {op} "
        f"{_random_expr(rng, extra, depth + 1)})"
    )


def _random_body(
    rng: random.Random, extra: str, hazards: bool = False
) -> list[str]:
    stmts: list[str] = []
    # optional truncation guard first (conditional return)
    if rng.random() < 0.3:
        stmts.append(
            f"if (this->{rng.choice(_DATA)} > {rng.randint(2, 6)}) return;"
        )
    n = rng.randint(1, 4)
    for _ in range(n):
        kind = rng.random()
        if kind < 0.45:
            target = rng.choice(_DATA + [extra])
            stmts.append(f"this->{target} = {_random_expr(rng, extra)};")
        elif kind < 0.6:
            which = rng.choice(["G0", "G1"])
            stmts.append(f"{which} = {which} + {_random_expr(rng, extra)};")
        elif kind < 0.75:
            cond_field = rng.choice(_DATA)
            target = rng.choice(_DATA)
            stmts.append(
                f"if (this->{cond_field} == {rng.randint(0, 3)}) "
                f"{{ this->{target} = {_random_expr(rng, extra)}; }}"
            )
        elif kind < 0.9:
            child = rng.choice(_CHILDREN)
            method = rng.choice(_METHODS)
            stmts.append(
                f"this->{child}->{method}({_random_expr(rng, extra)});"
            )
        else:
            # paired delete+new keeps children non-null
            child = rng.choice(_CHILDREN)
            cond_field = rng.choice(_DATA)
            stmts.append(
                f"if (this->{cond_field} > {rng.randint(3, 7)}) {{ "
                f"delete this->{child}; this->{child} = new Leaf(); "
                f"this->{child}->d0 = {rng.randint(0, 9)}; }}"
            )
    # hazard draws come strictly AFTER the base draws: with
    # hazards=False this function consumes the identical rng sequence
    # it always has, so pinned-seed tests stay stable
    if hazards and rng.random() < 0.6:
        stmts.extend(hazard_statements(rng, extra))
    return stmts


def random_tree(
    program, heap: Heap, rng: random.Random, max_depth: int = 4
) -> Node:
    """A random full tree: every child slot filled, Leaf at the bottom."""

    def build(depth: int) -> Node:
        if depth >= max_depth:
            type_name = "Leaf"
        else:
            type_name = rng.choice(["A", "B", "A", "Leaf"])
        overrides = {data: rng.randint(0, 8) for data in _DATA}
        if type_name in ("A", "B"):
            overrides[f"x{type_name}"] = rng.randint(0, 8)
        node = Node.new(program, heap, type_name, **overrides)
        if type_name != "Leaf":
            # Leaf terminates the tree: its (inherited) traversals are
            # no-ops, so its child slots are never dereferenced.
            for child in _CHILDREN:
                node.set(child, build(depth + 1))
        return node

    return build(0)
