"""Benchmark-harness tests: measurement, normalization, table rendering,
and fast (no-cache) smoke runs of every experiment entry point."""

import math

from repro.bench.metrics import Measurement, measure_run
from repro.bench.runner import compare_fused_unfused, compare_treefuser, fused_for
from repro.bench.tables import format_series, format_table
from repro.bench import experiments
from repro.runtime import Node

from tests.fixtures import fig2_program
from repro.runtime.values import ObjectValue


def _build(program, heap):
    end = Node.new(program, heap, "End")
    box = Node.new(
        program, heap, "TextBox",
        Text=ObjectValue("String", {"Length": 4}), Next=end,
    )
    return box


class TestMeasurement:
    def test_measure_without_cache(self):
        program = fig2_program()
        result = measure_run(program, _build, {"CHAR_WIDTH": 2})
        assert result.node_visits == 4
        assert result.instructions > 0
        assert result.misses == {}
        assert result.modeled_cycles == result.instructions
        assert result.tree_bytes > 0

    def test_measure_with_cache_adds_penalties(self):
        program = fig2_program()
        result = measure_run(program, _build, {"CHAR_WIDTH": 2}, cache_scale=64)
        assert set(result.misses) == {"L1", "L2", "L3"}
        assert result.modeled_cycles > result.instructions

    def test_normalization_ratios(self):
        base = Measurement(
            node_visits=100, instructions=1000, misses={"L2": 50},
            modeled_cycles=2000, wall_seconds=1.0, tree_bytes=0,
        )
        other = Measurement(
            node_visits=50, instructions=900, misses={"L2": 10},
            modeled_cycles=1000, wall_seconds=0.5, tree_bytes=0,
        )
        ratios = other.normalized_to(base)
        assert ratios["node_visits"] == 0.5
        assert ratios["instructions"] == 0.9
        assert ratios["L2_misses"] == 0.2
        assert ratios["runtime"] == 0.5

    def test_normalization_handles_zero_baseline(self):
        base = Measurement(0, 0, {}, 0, 0.0, 0)
        other = Measurement(1, 1, {}, 1, 1.0, 0)
        ratios = other.normalized_to(base)
        assert math.isnan(ratios["node_visits"])


class TestRunner:
    def test_compare_fused_unfused(self):
        program = fig2_program()
        result = compare_fused_unfused(
            "demo", program, _build, {"CHAR_WIDTH": 2}
        )
        assert result.fused.node_visits < result.unfused.node_visits
        assert result.normalized["node_visits"] == (
            result.fused.node_visits / result.unfused.node_visits
        )

    def test_fused_for_is_cached(self):
        program = fig2_program()
        assert fused_for(program) is fused_for(program)

    def test_compare_treefuser_runs(self):
        program = fig2_program()
        result = compare_treefuser("tf", program, _build, {"CHAR_WIDTH": 2})
        assert result.unfused.node_visits > 0
        assert result.fused.node_visits <= result.unfused.node_visits


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            "Title", ["name", "value"], [("row", 1.23456), ("longer-row", 7)]
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "1.235" in text
        assert "longer-row" in text
        # header separator matches width
        assert set(lines[2].replace("  ", "")) == {"-"}

    def test_format_series(self):
        text = format_series(
            "Fig", "x", [1, 2], {"m": [0.5, 0.25]}, note="hello"
        )
        assert "Fig" in text and "note: hello" in text
        assert "0.250" in text


class TestExperimentsSmoke:
    """Every entry point runs end-to-end without the cache simulator."""

    def test_table1(self):
        text, rows = experiments.table1_capabilities()
        assert "Grafter" in text and len(rows) == 6

    def test_table2(self):
        text, rows = experiments.table2_passes()
        assert "resolveFlexWidths" in text

    def test_fig9a_no_cache(self):
        text, data = experiments.fig9a_render_grafter(sizes=(1, 2), cache_scale=None)
        assert len(data["series"]["node_visits"]) == 2

    def test_fig9b_no_cache(self):
        text, data = experiments.fig9b_render_treefuser(sizes=(1,), cache_scale=None)
        assert data["series"]["instructions"][0] > 1.0

    def test_table3_no_cache(self):
        text, data = experiments.table3_render_configs(
            cache_scale=None, doc1_pages=4, doc2_rows=6, doc3_pages=3
        )
        assert len(data) == 3

    def test_fig11_no_cache(self):
        text, data = experiments.fig11_ast_scaling(sizes=(2, 4), cache_scale=None)
        assert all(v < 1 for v in data["series"]["node_visits"])

    def test_table4_no_cache(self):
        text, data = experiments.table4_ast_configs(cache_scale=None)
        assert len(data) == 3

    def test_fig12_no_cache(self):
        text, data = experiments.fig12_kdtree_scaling(depths=(3, 4), cache_scale=None)
        assert all(v < 0.5 for v in data["series"]["node_visits"])

    def test_table6_no_cache(self):
        text, data = experiments.table6_kdtree_equations(depth=4, cache_scale=None)
        assert len(data) == 3

    def test_fig13_no_cache(self):
        text, data = experiments.fig13_fmm(sizes=(200,), cache_scale=None)
        assert 0.6 <= data["series"]["node_visits"][0] <= 0.75

    def test_lloc(self):
        text, data = experiments.lloc_report()
        assert data["grafter_functions"] > data["treefuser_functions"]
