"""Tier composition: promotion, persist gating, and per-pass disk GC."""

from repro.pipeline import CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.storage import (
    DiskTier,
    MemoryTier,
    PeerTier,
    ResultKey,
    TieredStore,
)

from tests.fixtures import FIG2_SOURCE


def _compile(source=FIG2_SOURCE, cache=None, **options_kw):
    return pipeline_compile(
        source,
        options=CompileOptions(**options_kw),
        cache=cache if cache is not None else MemoryTier(),
    )


class TestPromotion:
    def test_peer_hit_promotes_into_disk_and_memory(self, tmp_path):
        peer_root = tmp_path / "peer"
        local_root = tmp_path / "local"
        seeded = _compile(cache_dir=str(peer_root))
        assert not seeded.cache_hit

        memory = MemoryTier()
        warm = _compile(
            cache=memory,
            cache_dir=str(local_root),
            peers=(str(peer_root),),
        )
        assert warm.cache_hit
        # the peer's artifact now lives in the local store...
        local = DiskTier(str(local_root))
        assert local.load(
            warm.source_hash, warm.options.output_hash()
        ) is not None
        # ...and in the memory tier (adopted as a served-from-below hit)
        assert memory.disk_hits == 1

    def test_peer_promotion_republishes_the_exact_bytes(self, tmp_path):
        # promotion goes through the blob face: the local store's copy
        # is the peer's payload verbatim, not a re-pickle (which also
        # keeps the peer-warm path within sight of a local-warm one)
        peer_root = tmp_path / "peer"
        local_root = tmp_path / "local"
        seeded = _compile(cache_dir=str(peer_root))
        _compile(
            cache_dir=str(local_root), peers=(str(peer_root),)
        )
        peer_path = DiskTier(str(peer_root)).path_for(
            seeded.source_hash, seeded.options.output_hash()
        )
        local_path = DiskTier(str(local_root)).path_for(
            seeded.source_hash, seeded.options.output_hash()
        )
        assert local_path.read_bytes() == peer_path.read_bytes()

    def test_repeat_access_no_longer_needs_the_peer(self, tmp_path):
        peer_root = tmp_path / "peer"
        local_root = tmp_path / "local"
        _compile(cache_dir=str(peer_root))
        _compile(
            cache_dir=str(local_root), peers=(str(peer_root),)
        )
        # a later process (fresh memory tier) with the peer *gone* is
        # still warm: promotion persisted the artifact locally
        import shutil

        shutil.rmtree(peer_root)
        again = _compile(cache_dir=str(local_root))
        assert again.cache_hit

    def test_unit_promotion_disk_to_memory(self, tmp_path):
        store = DiskTier(str(tmp_path))
        store.put_unit("fusion", "ab" * 32, {"plan": 1})
        memory = MemoryTier()
        tiers = TieredStore([memory, store])
        artifact, served_by = tiers.get_unit("fusion", "ab" * 32)
        assert artifact == {"plan": 1}
        assert served_by is store
        # second lookup is served by memory
        artifact, served_by = tiers.get_unit("fusion", "ab" * 32)
        assert served_by is memory


class TestPersistGating:
    def test_persist_false_never_writes_the_disk_tier(self, tmp_path):
        memory = MemoryTier()
        disk = DiskTier(str(tmp_path))
        tiers = TieredStore([memory, disk], persist=False)
        tiers.put_unit("emit", "cd" * 32, "text", spill=True)
        assert disk.stats()["unit_entries"] == 0
        assert memory.get_unit("emit", "cd" * 32) == "text"

    def test_persist_false_promotion_skips_disk(self, tmp_path):
        peer_root = tmp_path / "peer"
        seeded = _compile(cache_dir=str(peer_root))
        memory = MemoryTier()
        local = DiskTier(str(tmp_path / "local"))
        tiers = TieredStore(
            [memory, local, PeerTier(str(peer_root))], persist=False
        )
        key = ResultKey.of(seeded.source_hash, seeded.options)
        assert tiers.get_result(key) is not None
        assert len(local) == 0  # read-only local store stayed clean
        assert memory.get_result(key) is not None


class TestDiskGC:
    def test_per_pass_gc_leaves_other_passes_and_results(self, tmp_path):
        result = _compile(cache_dir=str(tmp_path))
        store = DiskTier(str(tmp_path))
        before = store.stats()
        assert before["unit_entries"] > 0
        fusion_files = list(store.dir.glob("units/fusion/*/*.pkl"))
        emit_files = list(store.dir.glob("units/emit/*/*.pkl"))
        assert fusion_files and emit_files

        summary = store.gc(pass_name="fusion")
        assert summary["removed"] == len(fusion_files)
        assert not list(store.dir.glob("units/fusion/*/*.pkl"))
        assert list(store.dir.glob("units/emit/*/*.pkl")) == emit_files
        # the full result is untouched
        assert store.load(
            result.source_hash, result.options.output_hash()
        ) is not None

    def test_post_gc_recompile_is_byte_identical(self, tmp_path):
        first = _compile(cache_dir=str(tmp_path))
        DiskTier(str(tmp_path)).gc(pass_name="fusion")
        # fresh memory tier + result lookup bypassed: fusion recomputes
        # (its disk units are gone) but the output must not change
        again = pipeline_compile(
            FIG2_SOURCE,
            options=CompileOptions(cache_dir=str(tmp_path)),
            cache=MemoryTier(),
            reuse_result=False,
        )
        assert again.fused_source == first.fused_source
        assert again.unfused_source == first.unfused_source

    def test_gc_without_policy_is_refused(self, tmp_path):
        import pytest

        with pytest.raises(ValueError, match="gc needs"):
            DiskTier(str(tmp_path)).gc()

    def test_gc_refuses_traversal_shaped_pass_names(self, tmp_path):
        import pytest

        # the scope becomes a glob under the store root; names with
        # path separators (e.g. from POST /gc) must never reach it
        victim = tmp_path / "victim" / "ab"
        victim.mkdir(parents=True)
        (victim / "data.pkl").write_bytes(b"precious")
        store = DiskTier(str(tmp_path / "store"))
        for evil in ("../../victim", "units/..", "a/b", "..", ""):
            with pytest.raises(ValueError, match="invalid pass name"):
                store.gc(pass_name=evil)
        assert (victim / "data.pkl").read_bytes() == b"precious"

    def test_tiered_gc_respects_the_persist_gate(self, tmp_path):
        # persist=False means "never dirty this store" — gc included
        _compile(cache_dir=str(tmp_path))
        disk = DiskTier(str(tmp_path))
        before = disk.stats()["unit_entries"]
        assert before > 0
        memory = MemoryTier()
        read_only = TieredStore([memory, disk], persist=False)
        summary = read_only.gc(pass_name="fusion")
        assert disk.stats()["unit_entries"] == before
        assert disk.label not in summary

    def test_gc_max_bytes_trims_lru(self, tmp_path):
        _compile(cache_dir=str(tmp_path))
        store = DiskTier(str(tmp_path))
        total = store.total_bytes()
        summary = store.gc(max_bytes=total // 2)
        assert summary["removed"] > 0
        assert store.total_bytes() <= total // 2
