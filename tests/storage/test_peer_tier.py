"""PeerTier: warm hits, damage tolerance, and clean fallback.

A peer can only ever make compiles faster: every failure mode —
missing entry, corrupt or truncated payload, foreign version,
unreachable server — must read as a counted miss that falls through to
a local compile, never as an error.
"""

import pickle

import pytest

from repro.pipeline import CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.storage import (
    FORMAT_VERSION,
    DiskTier,
    MemoryTier,
    PeerTier,
    ResultKey,
    peer_tier_for,
)

from tests.fixtures import FIG2_SOURCE


def _seed(tmp_path):
    """Compile FIG2 into a store rooted at *tmp_path*; return the
    result and the store."""
    result = pipeline_compile(
        FIG2_SOURCE,
        options=CompileOptions(cache_dir=str(tmp_path)),
        cache=MemoryTier(),
    )
    return result, DiskTier(str(tmp_path))


class TestDirectoryPeer:
    def test_serves_results_and_units(self, tmp_path):
        result, store = _seed(tmp_path)
        peer = PeerTier(str(tmp_path))
        key = ResultKey.of(result.source_hash, result.options)
        assert peer.get_result(key) is not None
        assert peer.hits == 1
        unit_file = next(store.dir.glob("units/fusion/*/*.pkl"))
        unit_key = unit_file.stem
        assert peer.get_unit("fusion", unit_key) is not None

    def test_is_strictly_read_only(self, tmp_path):
        result, store = _seed(tmp_path)
        peer = PeerTier(str(tmp_path))
        with pytest.raises(TypeError, match="read-only"):
            peer.put_result(
                ResultKey.of(result.source_hash, result.options), result
            )
        with pytest.raises(TypeError, match="read-only"):
            peer.put_unit("fusion", "00" * 32, object())

    def test_corrupt_entry_is_a_counted_miss_and_left_in_place(
        self, tmp_path
    ):
        result, store = _seed(tmp_path)
        path = store.path_for(
            result.source_hash, result.options.output_hash()
        )
        path.write_bytes(b"not a pickle at all")
        peer = PeerTier(str(tmp_path))
        key = ResultKey.of(result.source_hash, result.options)
        assert peer.get_result(key) is None
        assert peer.errors == 1 and peer.misses == 1
        # unlike the disk tier, a peer never deletes the other store's
        # files — its hygiene is its owner's business
        assert path.exists()

    def test_truncated_entry_is_a_counted_miss(self, tmp_path):
        result, store = _seed(tmp_path)
        path = store.path_for(
            result.source_hash, result.options.output_hash()
        )
        path.write_bytes(path.read_bytes()[: 40])
        peer = PeerTier(str(tmp_path))
        assert (
            peer.get_result(ResultKey.of(result.source_hash, result.options))
            is None
        )
        assert peer.errors == 1

    def test_foreign_format_version_is_a_clean_miss(self, tmp_path):
        result, store = _seed(tmp_path)
        path = store.path_for(
            result.source_hash, result.options.output_hash()
        )
        payload = pickle.loads(path.read_bytes())
        payload["format"] = FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        peer = PeerTier(str(tmp_path))
        assert (
            peer.get_result(ResultKey.of(result.source_hash, result.options))
            is None
        )

    def test_compile_falls_back_cleanly_past_a_damaged_peer(
        self, tmp_path
    ):
        # the whole point: a peer full of garbage must not break a
        # compile — it just stops helping
        result, store = _seed(tmp_path / "peer")
        for path in store.dir.rglob("*.pkl"):
            path.write_bytes(b"garbage")
        compiled = pipeline_compile(
            FIG2_SOURCE,
            options=CompileOptions(peers=(str(tmp_path / "peer"),)),
            cache=MemoryTier(),
        )
        assert not compiled.cache_hit
        assert compiled.fused_source == result.fused_source


class TestHTTPPeerFailure:
    def test_unreachable_server_is_a_counted_miss(self, tmp_path):
        # a port nothing listens on: connection refused, immediately
        peer = PeerTier("http://127.0.0.1:1", timeout=0.5)
        _, _ = _seed_key(tmp_path)
        assert peer.get_result(_seed_key(tmp_path)[0]) is None
        assert peer.errors >= 1

    def test_compile_survives_an_unreachable_peer(self):
        compiled = pipeline_compile(
            FIG2_SOURCE,
            options=CompileOptions(peers=("http://127.0.0.1:1",)),
            cache=MemoryTier(),
        )
        assert not compiled.cache_hit
        assert compiled.fused is not None


class TestRegistry:
    def test_directory_targets_dedupe_by_resolved_path(self, tmp_path):
        direct = peer_tier_for(str(tmp_path))
        dotted = peer_tier_for(str(tmp_path / "."))
        assert direct is dotted

    def test_http_targets_key_verbatim(self):
        assert (
            peer_tier_for("http://127.0.0.1:9")
            is peer_tier_for("http://127.0.0.1:9")
        )

    def test_http_targets_dedupe_trailing_slash(self):
        # PeerTier.__init__ rstrips "/"; the registry must normalize
        # the same way or one peer gets two instances (split counters)
        assert (
            peer_tier_for("http://127.0.0.1:9/")
            is peer_tier_for("http://127.0.0.1:9")
        )


def _seed_key(tmp_path):
    options = CompileOptions(cache_dir=str(tmp_path))
    result = pipeline_compile(
        FIG2_SOURCE, options=options, cache=MemoryTier()
    )
    return ResultKey.of(result.source_hash, options), result
