"""Budget knobs must never resize the process-shared memory tier."""

import repro
from repro.pipeline import CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.pipeline.cache import GLOBAL_CACHE
from repro.storage import MemoryTier

from tests.fixtures import FIG2_SOURCE


def test_memory_budget_never_resizes_global_cache():
    before = GLOBAL_CACHE.max_bytes
    pipeline_compile(
        FIG2_SOURCE, options=CompileOptions(memory_budget=1000)
    )
    assert GLOBAL_CACHE.max_bytes == before, (
        "one caller's budget must not evict every other caller's "
        "results"
    )


def test_session_memory_budget_gets_a_private_tier():
    before = GLOBAL_CACHE.max_bytes
    with repro.Session(memory_budget=64 * 1024 * 1024) as session:
        compiled = session.compile(FIG2_SOURCE)
        assert compiled.result.fused is not None
        assert session._memory is not GLOBAL_CACHE
        assert session._memory.max_bytes == 64 * 1024 * 1024
        # the session's own compiles land in its own tier
        assert session.stats()["compile_cache"]["entries"] >= 1
    assert GLOBAL_CACHE.max_bytes == before


def test_privately_owned_cache_honors_the_budget():
    mine = MemoryTier()
    pipeline_compile(
        FIG2_SOURCE,
        cache=mine,
        options=CompileOptions(memory_budget=12345),
    )
    assert mine.max_bytes == 12345


def test_disk_budget_is_a_per_store_setting(tmp_path):
    from repro.storage import disk_tier_for

    pipeline_compile(
        FIG2_SOURCE,
        cache=MemoryTier(),
        options=CompileOptions(
            cache_dir=str(tmp_path), disk_budget=7 * 1024 * 1024
        ),
    )
    assert disk_tier_for(str(tmp_path)).max_bytes == 7 * 1024 * 1024
