"""MemoryTier: byte-budgeted global LRU and pass-scoped GC."""

import time

from repro.storage import MemoryTier


def _key(i: int) -> str:
    return f"{i:064x}"[:64].rjust(64, "0")


class TestByteBudget:
    def test_eviction_is_lru_ordered_under_the_byte_budget(self):
        tier = MemoryTier(max_bytes=3500)
        for i in range(4):
            tier.put_unit("fusion", _key(i), b"x" * 1000)
        # 4000 bytes against a 3500 budget: exactly the least recently
        # used entry (unit 0) must have gone, in insertion order
        assert tier.get_unit("fusion", _key(0)) is None
        for i in (1, 2, 3):
            assert tier.get_unit("fusion", _key(i)) is not None

    def test_touch_refreshes_recency(self):
        tier = MemoryTier(max_bytes=3500)
        for i in range(3):
            tier.put_unit("fusion", _key(i), b"x" * 1000)
        # touching unit 0 makes unit 1 the eviction victim
        assert tier.get_unit("fusion", _key(0)) is not None
        tier.put_unit("fusion", _key(3), b"x" * 1000)
        assert tier.get_unit("fusion", _key(1)) is None
        assert tier.get_unit("fusion", _key(0)) is not None

    def test_budget_is_global_across_sections(self):
        # the oldest entry goes first even when it lives in a different
        # section than the insert that tipped the budget
        tier = MemoryTier(max_bytes=2500)
        tier.put_artifact("old-module", b"x" * 1000)
        tier.put_unit("emit", _key(0), b"x" * 1000)
        tier.put_unit("emit", _key(1), b"x" * 1000)
        assert tier.get_artifact("old-module") is None
        assert tier.get_unit("emit", _key(0)) is not None
        assert tier.get_unit("emit", _key(1)) is not None

    def test_entry_count_caps_still_apply(self):
        tier = MemoryTier(max_units=2)
        for i in range(3):
            tier.put_unit("fusion", _key(i), b"tiny")
        assert tier.stats()["units"] == 2
        assert tier.get_unit("fusion", _key(0)) is None

    def test_total_bytes_tracks_inserts_and_evictions(self):
        tier = MemoryTier(max_bytes=10_000)
        tier.put_unit("emit", _key(0), b"x" * 1000)
        assert tier.total_bytes() == 1000
        tier.put_unit("emit", _key(0), b"x" * 500)  # replace, not leak
        assert tier.total_bytes() == 500


class TestGC:
    def test_pass_scoped_gc_leaves_other_passes_intact(self):
        tier = MemoryTier()
        tier.put_unit("fusion", _key(0), b"plan")
        tier.put_unit("fusion", _key(1), b"plan")
        tier.put_unit("emit", _key(2), b"text")
        summary = tier.gc(pass_name="fusion")
        assert summary["removed"] == 2
        assert tier.get_unit("fusion", _key(0)) is None
        assert tier.get_unit("emit", _key(2)) is not None

    def test_gc_max_age_drops_only_old_entries(self):
        tier = MemoryTier()
        tier.put_unit("fusion", _key(0), b"old")
        # age the first entry artificially (the tier stamps wall time
        # at insert)
        tier._units[("fusion", _key(0))].wall = time.time() - 100
        tier.put_unit("fusion", _key(1), b"new")
        summary = tier.gc(pass_name="fusion", max_age_seconds=50)
        assert summary["removed"] == 1
        assert tier.get_unit("fusion", _key(0)) is None
        assert tier.get_unit("fusion", _key(1)) is not None

    def test_gc_max_bytes_trims_a_pass_lru_first(self):
        tier = MemoryTier()
        for i in range(4):
            tier.put_unit("fusion", _key(i), b"x" * 1000)
        tier.put_unit("emit", _key(9), b"x" * 1000)
        summary = tier.gc(pass_name="fusion", max_bytes=2000)
        assert summary["removed"] == 2
        assert tier.get_unit("fusion", _key(0)) is None
        assert tier.get_unit("fusion", _key(1)) is None
        assert tier.get_unit("fusion", _key(3)) is not None
        assert tier.get_unit("emit", _key(9)) is not None
