"""Cache simulator tests: LRU, associativity, hierarchy forwarding."""

import pytest

from repro.cachesim import (
    CacheHierarchy,
    LatencyModel,
    SetAssociativeCache,
    paper_hierarchy,
)
from repro.errors import ReproError


class TestSetAssociative:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache("t", 1024, 2, line_size=64)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63)  # same line
        assert not cache.access(64)  # next line
        assert cache.misses == 2
        assert cache.hits == 2

    def test_lru_eviction_within_set(self):
        # 2-way, 2 sets: lines 0,2,4 map to set 0 (line % 2)
        cache = SetAssociativeCache("t", 256, 2, line_size=64)
        assert cache.num_sets == 2
        cache.access(0 * 64)
        cache.access(2 * 64)
        cache.access(0 * 64)  # refresh line 0
        cache.access(4 * 64)  # evicts line 2 (LRU)
        assert cache.access(0 * 64)  # still resident
        assert not cache.access(2 * 64)  # was evicted

    def test_full_associativity_uses_whole_set(self):
        cache = SetAssociativeCache("t", 512, 8, line_size=64)
        assert cache.num_sets == 1
        for i in range(8):
            cache.access(i * 64)
        for i in range(8):
            assert cache.access(i * 64)
        cache.access(8 * 64)  # evicts line 0
        assert not cache.access(0)

    def test_sequential_scan_larger_than_cache_always_misses_on_repeat(self):
        cache = SetAssociativeCache("t", 1024, 4, line_size=64)
        lines = 64  # 4KB worth of lines >> 1KB cache
        for _ in range(3):
            for i in range(lines):
                cache.access(i * 64)
        # with LRU and a working set 4x the cache, every access misses
        assert cache.misses == 3 * lines

    def test_small_working_set_fits(self):
        cache = SetAssociativeCache("t", 4096, 8, line_size=64)
        for _ in range(10):
            for i in range(8):
                cache.access(i * 64)
        assert cache.misses == 8  # only cold misses

    def test_bad_geometry_rejected(self):
        with pytest.raises(ReproError):
            SetAssociativeCache("t", 1000, 3, line_size=60)

    def test_flush_and_reset(self):
        cache = SetAssociativeCache("t", 1024, 2)
        cache.access(0)
        cache.flush()
        assert cache.misses == 0
        assert not cache.access(0)  # cold again


class TestHierarchy:
    def test_miss_forwards_to_next_level(self):
        l1 = SetAssociativeCache("L1", 128, 2)
        l2 = SetAssociativeCache("L2", 1024, 2)
        hierarchy = CacheHierarchy([l1, l2], LatencyModel())
        for i in range(8):  # 8 lines > L1 (2 lines), fits L2 (16 lines)
            hierarchy.access(i * 64)
        assert l1.misses == 8
        assert l2.misses == 8
        for i in range(8):
            hierarchy.access(i * 64)
        assert l2.misses == 8  # second pass hits L2
        assert l2.hits > 0

    def test_l1_hit_does_not_touch_l2(self):
        l1 = SetAssociativeCache("L1", 1024, 2)
        l2 = SetAssociativeCache("L2", 4096, 2)
        hierarchy = CacheHierarchy([l1, l2], LatencyModel())
        hierarchy.access(0)
        hierarchy.access(0)
        assert l2.accesses == 1  # only the initial miss reached L2

    def test_penalty_cycles(self):
        l1 = SetAssociativeCache("L1", 128, 2)
        l2 = SetAssociativeCache("L2", 1024, 2)
        latency = LatencyModel(l1_miss=10, l2_miss=100, l3_miss=0)
        hierarchy = CacheHierarchy([l1, l2], latency)
        hierarchy.access(0)  # misses both
        assert hierarchy.penalty_cycles() == 110

    def test_paper_hierarchy_geometry(self):
        hierarchy = paper_hierarchy()
        l1, l2, l3 = hierarchy.levels
        assert l1.size_bytes == 32 * 1024 and l1.ways == 8
        assert l2.size_bytes == 256 * 1024 and l2.ways == 8
        assert l3.size_bytes == 20 * 1024 * 1024 and l3.ways == 20
        assert all(level.line_size == 64 for level in hierarchy.levels)

    def test_paper_hierarchy_scaling(self):
        hierarchy = paper_hierarchy(scale=8)
        l1, l2, l3 = hierarchy.levels
        assert l1.size_bytes == 4 * 1024
        assert l3.size_bytes == 20 * 1024 * 1024 // 8
