"""Every CompileOptions field must participate in the cache key.

``canonical()`` is derived by reflection over the dataclass fields, so
a newly added knob joins the key automatically — but that only holds
while ``canonical()`` stays reflective. These tests pin the contract
from the outside: for *every* field (present and future), (a) the field
name appears in the canonical text, and (b) changing the field's value
changes the options hash. A failure here means a knob was added whose
settings would silently alias cache entries — the exact bug class the
ROADMAP warned about after PR 1.
"""

import dataclasses

import pytest

from repro.fusion.grouping import FusionLimits
from repro.pipeline import CompileOptions


def _variant(name: str, value):
    """A value for field *name* that must produce a different hash."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, FusionLimits):
        return dataclasses.replace(
            value, max_sequence=value.max_sequence + 1
        )
    if isinstance(value, tuple):
        return value + ("/definitely/not/the/default",)
    if name == "mode":
        return "treefuser" if value != "treefuser" else "grafter"
    if name == "layout":
        return "pooled" if value != "pooled" else "object"
    if isinstance(value, str) or value is None:
        return "/definitely/not/the/default"
    raise AssertionError(
        f"no variant rule for field {name!r} of type {type(value)!r}; "
        f"extend _variant so the new knob stays covered"
    )


FIELDS = [f.name for f in dataclasses.fields(CompileOptions)]


class TestEveryFieldParticipates:
    @pytest.mark.parametrize("name", FIELDS)
    def test_field_named_in_canonical(self, name):
        options = CompileOptions()
        canonical = options.canonical()
        if name == "limits":
            # the limits dataclass is inlined field by field
            for limit in dataclasses.fields(FusionLimits):
                assert f"{limit.name}=" in canonical
        else:
            assert f"{name}=" in canonical

    @pytest.mark.parametrize("name", FIELDS)
    def test_changing_field_changes_hash(self, name):
        base = CompileOptions()
        changed = dataclasses.replace(
            base, **{name: _variant(name, getattr(base, name))}
        )
        assert changed.options_hash() != base.options_hash(), (
            f"field {name!r} does not participate in canonical(): "
            f"two compiles differing only in {name!r} would alias"
        )

    def test_nested_limits_fields_all_participate(self):
        base = CompileOptions()
        for limit in dataclasses.fields(FusionLimits):
            bumped = dataclasses.replace(
                base.limits,
                **{limit.name: getattr(base.limits, limit.name) + 1},
            )
            changed = dataclasses.replace(base, limits=bumped)
            assert changed.options_hash() != base.options_hash(), limit.name


class TestLayoutSeparation:
    """``layout`` must split every key space: the session/in-memory key
    (``options_hash``) *and* the on-disk store's key (``output_hash``) —
    pooled modules are different code, not a different view of the same
    artifact."""

    def test_layout_changes_both_hashes(self):
        base = CompileOptions()
        pooled = dataclasses.replace(base, layout="pooled")
        assert pooled.options_hash() != base.options_hash()
        assert pooled.output_hash() != base.output_hash()

    def test_layout_is_an_output_field(self):
        assert "layout" not in CompileOptions.NON_OUTPUT_FIELDS


class TestCanonicalStability:
    def test_equal_options_hash_alike(self):
        assert (
            CompileOptions().options_hash()
            == CompileOptions().options_hash()
        )

    def test_cache_dir_spelling_is_normalized(self, tmp_path):
        import os

        absolute = CompileOptions(cache_dir=str(tmp_path))
        cwd = os.getcwd()
        try:
            os.chdir(tmp_path.parent)
            relative = CompileOptions(cache_dir=tmp_path.name)
            assert (
                relative.options_hash() == absolute.options_hash()
            ), "relative and absolute spellings of one dir must agree"
        finally:
            os.chdir(cwd)
