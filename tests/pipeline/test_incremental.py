"""Incremental compilation: per-unit invalidation and byte-identity.

The contract under test (ISSUE 4 tentpole): after editing one traversal
in a multi-traversal workload, only the dirtied units re-run
analysis/fusion/emit — the rest load from the unit store — and the
assembled module is byte-identical to a from-scratch cold compile of
the edited source. Option changes and pure-impl changes must dirty
exactly the unit classes that depend on them.
"""

import pytest

from repro.fusion.grouping import FusionLimits
from repro.pipeline import CompileCache, CompileOptions
from repro.pipeline import compile as pipeline_compile

# two traversals with disjoint recursion (f walks a, g walks b), so the
# per-type singleton sequences give several independent fused units
SOURCE_V1 = """
_tree_ class N {
    _child_ N* a;
    _child_ N* b;
    int x = 0;
    int y = 0;
    _traversal_ virtual void f() {}
    _traversal_ virtual void g() {}
};
_tree_ class I : public N {
    _traversal_ void f() { this->a->f(); this->x = this->x + 1; }
    _traversal_ void g() { this->b->g(); this->y = this->y + 2; }
};
_tree_ class L : public N { };
int main() { N* root = ...; root->f(); root->g(); }
"""

# a *computation-only* edit to one traversal (g adds 3 instead of 2):
# access structure unchanged, so every dependence/fusion unit stays warm
SOURCE_V2_CONST = SOURCE_V1.replace(
    "this->y = this->y + 2;", "this->y = this->y + 3;"
)

# an *access-changing* edit to the same traversal (g now also reads x):
# sequences that can reach I::g must re-plan
SOURCE_V2_ACCESS = SOURCE_V1.replace(
    "this->y = this->y + 2;", "this->y = this->y + this->x;"
)


def _compile(source, cache, **kwargs):
    return pipeline_compile(source, cache=cache, **kwargs)


def _counters(result, pass_name):
    timing = next(t for t in result.timings if t.name == pass_name)
    return (
        timing.detail.get("unit_hits", 0),
        timing.detail.get("unit_misses", 0),
    )


def _cold(source, **kwargs):
    return pipeline_compile(
        source, options=CompileOptions(use_cache=False), **kwargs
    )


class TestSingleEdit:
    def test_constant_edit_reuses_every_plan_and_reemits_only_dirty(self):
        cache = CompileCache()
        _compile(SOURCE_V1, cache)
        edited = _compile(SOURCE_V2_CONST, cache)
        assert not edited.cache_hit

        # analysis: only the edited method recollects
        hits, misses = _counters(edited, "access-analysis")
        assert misses == 1 and hits > 0
        # dependence + fusion: access structure unchanged -> all warm
        assert _counters(edited, "dependence")[1] == 0
        assert _counters(edited, "fusion")[1] == 0
        # emit: the edited method function plus the fused units whose
        # closures reach I::g re-emit; everything else reloads
        hits, misses = _counters(edited, "emit")
        assert hits > 0 and misses > 0
        dirty = {
            key
            for key in edited.fused.units
            if "I::g" in key  # closures of these sequences reach the edit
        }
        # one dirtied module function per dirty fused unit + 1 method
        assert misses == len(dirty) + 1

    def test_constant_edit_is_byte_identical_to_cold_compile(self):
        cache = CompileCache()
        _compile(SOURCE_V1, cache)
        edited = _compile(SOURCE_V2_CONST, cache)
        cold = _cold(SOURCE_V2_CONST)
        assert edited.fused_source == cold.fused_source
        assert edited.unfused_source == cold.unfused_source
        # and the edit is actually in the output
        assert "+ 3" in edited.fused_source

    def test_access_edit_dirties_reaching_plans_only(self):
        cache = CompileCache()
        _compile(SOURCE_V1, cache)
        edited = _compile(SOURCE_V2_ACCESS, cache)
        _, fusion_misses = _counters(edited, "fusion")
        fusion_hits, _ = _counters(edited, "fusion")
        reaching = {
            key for key in edited.fused.units if "I::g" in key
        }
        assert fusion_misses == len(reaching)
        assert fusion_hits == len(edited.fused.units) - len(reaching)
        cold = _cold(SOURCE_V2_ACCESS)
        assert edited.fused_source == cold.fused_source

    def test_edited_units_execute_the_new_code(self):
        # replayed structures must bind *current* statements — run the
        # recompiled module and check the new constant took effect
        from repro.runtime import Heap, Node

        cache = CompileCache()
        _compile(SOURCE_V1, cache)
        edited = _compile(SOURCE_V2_CONST, cache)
        program = edited.program
        heap = Heap(program)
        leaf = Node.new(program, heap, "L")
        root = Node.new(program, heap, "I", a=leaf, b=leaf)
        context = edited.compiled_fused.run_fused(heap, root)
        assert root.get("y") == 3  # the v2 constant, not v1's 2
        assert context is not None


class TestOptionAndImplInvalidation:
    def test_limits_change_dirties_plans_but_not_graphs_or_methods(self):
        cache = CompileCache()
        _compile(SOURCE_V1, cache)
        swept = _compile(
            SOURCE_V1,
            cache,
            options=CompileOptions(limits=FusionLimits(max_repeat=3)),
        )
        assert not swept.cache_hit
        # plans are keyed on the limits -> all miss
        assert _counters(swept, "fusion")[0] == 0
        # dependence structures are limits-independent -> all hit
        assert _counters(swept, "dependence")[1] == 0
        # unfused method emission is plan-independent -> all hit
        hits, misses = _counters(swept, "emit")
        assert hits >= len(list(swept.program.all_methods()))

    def test_impl_rebinding_keeps_every_unit_warm(self):
        # unit artifacts never embed impls (generated code calls
        # RT.pure at run time), so rebinding impls dirties only the
        # whole-result key
        source = """
        _pure_ int boost(int a);
        _tree_ class N {
            _child_ N* kid;
            int x = 0;
            _traversal_ virtual void f() {}
        };
        _tree_ class I : public N {
            _traversal_ void f() { this->x = boost(this->x); this->kid->f(); }
        };
        _tree_ class L : public N { };
        int main() { N* root = ...; root->f(); }
        """
        cache = CompileCache()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            first = _compile(
                source, cache, pure_impls={"boost": lambda a: a + 1}
            )
            second = _compile(
                source, cache, pure_impls={"boost": lambda a: a * 2}
            )
        assert first.source_hash != second.source_hash
        assert not second.cache_hit
        for pass_name in ("access-analysis", "dependence", "fusion", "emit"):
            assert _counters(second, pass_name)[1] == 0, pass_name
        assert second.fused_source == first.fused_source


class TestRecompileSurface:
    def test_session_recompile_reuses_units_and_reports(self):
        import repro

        with repro.Session() as session:
            first = session.compile(SOURCE_V1)
            assert not first.result.cache_hit
            again = session.recompile(SOURCE_V1)
        # recompile bypasses the whole-result cache but the unit layer
        # serves every pass
        assert not again.result.cache_hit
        assert _counters(again.result, "fusion")[1] == 0
        assert _counters(again.result, "emit")[1] == 0
        assert again.result.fused_source == first.result.fused_source
        report = again.result.unit_report()
        for pass_name in ("access-analysis", "dependence", "fusion", "emit"):
            assert pass_name in report

    def test_unit_layer_disabled_without_caches(self):
        result = pipeline_compile(SOURCE_V1, cache=None)
        assert "no keyed units" in result.unit_report()
        for timing in result.timings:
            assert "unit_hits" not in timing.detail

    def test_incremental_false_skips_the_unit_layer(self):
        cache = CompileCache()
        _compile(SOURCE_V1, cache)
        again = _compile(
            SOURCE_V1, cache, incremental=False, reuse_result=False
        )
        assert not again.cache_hit
        assert "no keyed units" in again.unit_report()


class TestDiskUnits:
    def test_units_persist_and_serve_a_fresh_memory_cache(self, tmp_path):
        options = CompileOptions(cache_dir=str(tmp_path))
        first = _compile(SOURCE_V1, CompileCache(), options=options)
        assert not first.cache_hit
        # a brand-new memory cache, result lookup bypassed: every
        # fusion/emit unit must come back from disk
        again = _compile(
            SOURCE_V1,
            CompileCache(),
            options=options,
            reuse_result=False,
        )
        fusion = next(t for t in again.timings if t.name == "fusion")
        emit = next(t for t in again.timings if t.name == "emit")
        assert fusion.detail["unit_misses"] == 0
        assert fusion.detail.get("unit_disk_hits", 0) > 0
        assert emit.detail["unit_misses"] == 0
        assert again.fused_source == first.fused_source

    def test_store_counts_unit_entries(self, tmp_path):
        from repro.service.store import store_for

        options = CompileOptions(cache_dir=str(tmp_path))
        _compile(SOURCE_V1, CompileCache(), options=options)
        stats = store_for(str(tmp_path)).stats()
        assert stats["unit_entries"] > 0
        assert stats["unit_spills"] > 0


class TestLowerPassUnits:
    def test_lowering_is_a_cached_pre_pass(self):
        cache = CompileCache()
        options = CompileOptions(lower=True, emit=False)
        first = _compile(SOURCE_V1, cache, options=options)
        assert first.lowered is not None
        assert first.program.name.endswith("_treefuser")
        lower = next(t for t in first.timings if t.name == "lower")
        assert lower.detail["unit_misses"] == 1
        again = _compile(
            SOURCE_V1, cache, options=options, reuse_result=False
        )
        lower = next(t for t in again.timings if t.name == "lower")
        assert lower.detail["unit_hits"] == 1
        assert again.lowered.tags == first.lowered.tags

    def test_lower_pass_skipped_by_default(self):
        result = pipeline_compile(SOURCE_V1, cache=CompileCache())
        lower = next(t for t in result.timings if t.name == "lower")
        assert lower.detail == {"skipped": 1}
        assert result.lowered is None
