"""Content-addressed compile cache: hit/miss behavior and sharing."""

from repro.codegen import compile_fused, compile_program
from repro.frontend import parse_program
from repro.pipeline import (
    CompileCache,
    CompileOptions,
    compile as pipeline_compile,
    hash_program,
    hash_source,
)
from repro.fusion.grouping import FusionLimits

from tests.fixtures import FIG1_SOURCE, FIG2_SOURCE


class TestResultCache:
    def test_same_source_same_options_hits(self):
        cache = CompileCache()
        cold = pipeline_compile(FIG2_SOURCE, cache=cache)
        warm = pipeline_compile(FIG2_SOURCE, cache=cache)
        assert not cold.cache_hit
        assert warm.cache_hit
        # the memoized artifacts are shared, not re-synthesized
        assert warm.fused is cold.fused
        assert warm.compiled_fused is cold.compiled_fused
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] >= 1

    def test_warm_timings_are_lookup_only_with_cold_preserved(self):
        cache = CompileCache()
        cold = pipeline_compile(FIG2_SOURCE, cache=cache)
        warm = pipeline_compile(FIG2_SOURCE, cache=cache)
        assert [t.name for t in warm.timings] == ["cache-lookup"]
        assert warm.cold_timings is not None
        assert [t.name for t in warm.cold_timings] == [
            t.name for t in cold.timings
        ]
        # the cached record itself is untouched by the hit bookkeeping
        assert not cold.cache_hit

    def test_changed_options_miss(self):
        cache = CompileCache()
        pipeline_compile(FIG2_SOURCE, cache=cache)
        for options in [
            CompileOptions(limits=FusionLimits(max_sequence=3)),
            CompileOptions(limits=FusionLimits(max_repeat=2)),
            CompileOptions(mode="treefuser"),
        ]:
            result = pipeline_compile(FIG2_SOURCE, cache=cache, options=options)
            assert not result.cache_hit, options

    def test_changed_source_miss(self):
        cache = CompileCache()
        pipeline_compile(FIG2_SOURCE, cache=cache)
        result = pipeline_compile(FIG1_SOURCE, cache=cache)
        assert not result.cache_hit

    def test_emit_false_served_from_emit_true_entry(self):
        cache = CompileCache()
        emitted = pipeline_compile(FIG2_SOURCE, cache=cache)
        fused_only = pipeline_compile(
            FIG2_SOURCE, cache=cache, options=CompileOptions(emit=False)
        )
        assert fused_only.cache_hit
        assert fused_only.fused is emitted.fused
        # the reverse direction must stay a miss: an emit=False entry
        # lacks the compiled modules an emit=True caller needs
        cache2 = CompileCache()
        pipeline_compile(
            FIG2_SOURCE, cache=cache2, options=CompileOptions(emit=False)
        )
        full = pipeline_compile(FIG2_SOURCE, cache=cache2)
        assert not full.cache_hit
        assert full.compiled_fused is not None

    def test_use_cache_false_bypasses(self):
        cache = CompileCache()
        pipeline_compile(FIG2_SOURCE, cache=cache)
        result = pipeline_compile(
            FIG2_SOURCE, cache=cache, options=CompileOptions(use_cache=False)
        )
        assert not result.cache_hit

    def test_clear_forgets_everything(self):
        cache = CompileCache()
        pipeline_compile(FIG2_SOURCE, cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert not pipeline_compile(FIG2_SOURCE, cache=cache).cache_hit

    def test_lru_evicts_oldest(self):
        cache = CompileCache(max_entries=1)
        pipeline_compile(FIG2_SOURCE, cache=cache)
        pipeline_compile(FIG1_SOURCE, cache=cache)  # evicts fig2
        assert not pipeline_compile(FIG2_SOURCE, cache=cache).cache_hit


class TestContentAddressing:
    def test_program_hash_is_structural_not_identity(self):
        a = parse_program(FIG2_SOURCE, name="a")
        b = parse_program(FIG2_SOURCE, name="b")
        assert a is not b
        assert hash_program(a) == hash_program(b)

    def test_equivalent_program_objects_share_cache_entry(self):
        cache = CompileCache()
        cold = pipeline_compile(parse_program(FIG2_SOURCE), cache=cache)
        warm = pipeline_compile(parse_program(FIG2_SOURCE), cache=cache)
        assert warm.cache_hit
        assert warm.fused is cold.fused

    def test_source_hash_sensitive_to_text_and_impl_names(self):
        assert hash_source(FIG2_SOURCE) == hash_source(FIG2_SOURCE)
        assert hash_source(FIG2_SOURCE) != hash_source(FIG2_SOURCE + " ")
        assert hash_source(FIG2_SOURCE) != hash_source(
            FIG2_SOURCE, pure_impls={"f": len}
        )

    def test_different_pure_impls_do_not_share_cache_entry(self):
        # the callables are baked into the compiled program, so two
        # compiles of the same text with different impl objects must not
        # alias — a hit here would silently run the first caller's impls
        source = """
        _pure_ int f(int x);
        _tree_ class N {
            _child_ N* kid;
            int v = 0;
            _traversal_ virtual void go() { this->v = f(this->v); }
        };
        _tree_ class L : public N { };
        int main() { N* root = ...; root->go(); }
        """
        cache = CompileCache()
        plus_one = pipeline_compile(
            source, cache=cache, pure_impls={"f": lambda x: x + 1}
        )
        plus_hundred = pipeline_compile(
            source, cache=cache, pure_impls={"f": lambda x: x + 100}
        )
        assert not plus_hundred.cache_hit
        assert plus_one.program.pure_functions["f"].impl(1) == 2
        assert plus_hundred.program.pure_functions["f"].impl(1) == 101
        # the *same* impl objects do share
        impls = {"f": lambda x: x * 2}
        first = pipeline_compile(source, cache=cache, pure_impls=impls)
        second = pipeline_compile(source, cache=cache, pure_impls=impls)
        assert second.cache_hit
        assert second.fused is first.fused


class TestCodegenArtifactSharing:
    def test_compile_program_memoizes_by_content(self):
        program = parse_program(FIG2_SOURCE, name="fig2")
        first = compile_program(program)
        second = compile_program(program)
        assert first is second
        assert "def run_entry(" in first.source

    def test_compile_fused_memoizes_by_content(self):
        from repro.fusion import fuse_program

        program = parse_program(FIG2_SOURCE, name="fig2")
        fused = fuse_program(program)
        first = compile_fused(fused)
        second = compile_fused(fused)
        assert first is second
        assert "def run_fused(" in first.source

    def test_text_and_program_entry_points_share_modules(self):
        # a text-sourced pipeline compile and the Program-keyed codegen
        # helpers must land on the same exec'd module artifacts
        from repro.pipeline import GLOBAL_CACHE
        from repro.fusion import fuse_program

        result = pipeline_compile(FIG2_SOURCE, name="fig2")
        program = parse_program(FIG2_SOURCE, name="fig2")
        assert compile_program(program) is result.compiled_unfused
        assert compile_fused(fuse_program(program)) is result.compiled_fused
        assert GLOBAL_CACHE.stats()["artifacts"] >= 2

    def test_entryless_program_compiles_without_fusion(self):
        source = """
        _tree_ class N {
            _child_ N* kid;
            int v = 0;
            _traversal_ virtual void go() { this->v = 1; }
        };
        """
        program = parse_program(source, name="entryless")
        compiled = compile_program(program)
        assert compiled is compile_program(program)
        assert "def run_entry(" in compiled.source
