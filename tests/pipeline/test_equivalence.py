"""The FusionEngine shim and pipeline.compile() synthesize the same
fused programs on all four paper workloads (render, astlang, kdtree,
fmm) and in TreeFuser-lowered mode."""

import pytest

from repro.fusion import FusionEngine
from repro.fusion.fused_ir import print_fused_program
from repro.pipeline import CompileCache, CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.treefuser import lower_program
from repro.workloads.astlang import ast_program
from repro.workloads.fmm import fmm_program
from repro.workloads.kdtree import EQ1_SCHEDULE, equation_program
from repro.workloads.render import render_program

WORKLOADS = {
    "render": render_program,
    "astlang": ast_program,
    "kdtree": lambda: equation_program(EQ1_SCHEDULE),
    "fmm": fmm_program,
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_engine_shim_matches_pipeline(name):
    program = WORKLOADS[name]()
    via_engine = FusionEngine(program).fuse_program()
    via_pipeline = pipeline_compile(
        program, cache=CompileCache(), options=CompileOptions(emit=False)
    ).fused
    assert set(via_engine.units) == set(via_pipeline.units)
    assert via_engine.stats() == via_pipeline.stats()
    assert print_fused_program(via_engine) == print_fused_program(
        via_pipeline
    )
    assert via_engine.root_type == via_pipeline.root_type
    assert len(via_engine.entry_groups) == len(via_pipeline.entry_groups)
    for a, b in zip(via_engine.entry_groups, via_pipeline.entry_groups):
        assert a.method_names == b.method_names
        assert set(a.dispatch) == set(b.dispatch)
        for type_name in a.dispatch:
            assert a.dispatch[type_name].key == b.dispatch[type_name].key


def test_engine_shim_matches_pipeline_treefuser_lowered():
    lowered = lower_program(render_program())
    via_engine = FusionEngine(lowered.program).fuse_program()
    via_pipeline = pipeline_compile(
        lowered.program,
        cache=CompileCache(),
        options=CompileOptions(emit=False),
    ).fused
    assert set(via_engine.units) == set(via_pipeline.units)
    assert print_fused_program(via_engine) == print_fused_program(
        via_pipeline
    )
