"""Staged pipeline structure: pass ordering, instrumentation, options."""

import pytest

from repro.errors import FusionError, ValidationError
from repro.frontend import parse_program
from repro.pipeline import (
    CompileCache,
    CompileOptions,
    PassManager,
    compile as pipeline_compile,
    default_passes,
)
from repro.fusion.grouping import FusionLimits

from tests.fixtures import FIG2_SOURCE

EXPECTED_ORDER = [
    "parse",
    "validate",
    "lower",
    "access-analysis",
    "dependence",
    "fusion",
    "schedule",
    "emit",
]


class TestPassOrdering:
    def test_default_passes_ordered(self):
        assert PassManager(default_passes()).pass_names == EXPECTED_ORDER

    def test_timings_follow_pass_order(self):
        result = pipeline_compile(FIG2_SOURCE, cache=None)
        assert [t.name for t in result.timings] == EXPECTED_ORDER
        assert all(t.seconds >= 0 for t in result.timings)

    def test_each_pass_reports_ir_size_detail(self):
        result = pipeline_compile(FIG2_SOURCE, cache=None)
        detail = {t.name: t.detail for t in result.timings}
        assert detail["parse"]["tree_types"] == 4
        assert detail["access-analysis"]["statements"] > 0
        assert detail["dependence"]["vertices"] > 0
        assert detail["fusion"]["units"] == 3
        assert detail["schedule"]["max_width"] == 2
        assert detail["emit"]["fused_lines"] > 0


class TestCompileResult:
    def test_source_compile_produces_everything(self):
        result = pipeline_compile(FIG2_SOURCE, cache=None, name="fig2")
        assert result.program.name == "fig2"
        assert result.fused.stats()["units"] == 3
        assert "def run_fused(" in result.fused_source
        assert "def run_entry(" in result.unfused_source
        assert result.compiled_unfused is not None
        assert result.compiled_fused is not None
        assert not result.cache_hit

    def test_emit_false_stops_after_fusion(self):
        result = pipeline_compile(
            FIG2_SOURCE, cache=None, options=CompileOptions(emit=False)
        )
        assert result.fused is not None
        assert result.fused_source is None
        assert result.compiled_fused is None
        emit = next(t for t in result.timings if t.name == "emit")
        assert emit.detail == {"skipped": 1}

    def test_program_input_skips_frontend_stages(self):
        program = parse_program(FIG2_SOURCE, name="fig2")
        result = pipeline_compile(program, cache=None)
        detail = {t.name: t.detail for t in result.timings}
        assert detail["parse"] == {"skipped": 1}
        assert detail["validate"] == {"skipped": 1}
        assert result.program is program
        assert result.fused.stats()["units"] == 3

    def test_timings_report_format(self):
        result = pipeline_compile(FIG2_SOURCE, cache=None, name="fig2")
        report = result.timings_report()
        assert "pipeline timings for 'fig2' (cache miss" in report
        for name in EXPECTED_ORDER + ["total"]:
            assert name in report
        assert "ms" in report


class TestPipelineErrors:
    def test_invalid_source_fails_in_validate(self):
        bad = """
        _tree_ class N {
            _child_ N* kid;
            int flag = 0;
            _traversal_ virtual void go() {}
        };
        _tree_ class I : public N {
            _traversal_ void go() {
                if (this->flag == 1) { this->kid->go(); }
            }
        };
        _tree_ class L : public N { };
        int main() { N* root = ...; root->go(); }
        """
        with pytest.raises(ValidationError):
            pipeline_compile(bad, cache=None)
        # the same source is legal in treefuser mode
        result = pipeline_compile(
            bad, cache=None, options=CompileOptions(mode="treefuser")
        )
        assert result.fused is not None

    def test_entryless_program_raises_fusion_error(self):
        source = """
        _tree_ class N {
            _child_ N* kid;
            _traversal_ virtual void go() {}
        };
        """
        with pytest.raises(FusionError):
            pipeline_compile(source, cache=None)


class TestFusionLimitsThroughPipeline:
    def test_limits_reach_the_planner(self):
        source = """
        _tree_ class N {
            _child_ N* kid;
            int v = 0;
            _traversal_ virtual void f() {}
        };
        _tree_ class I : public N {
            _traversal_ void f() { this->kid->f(); this->v = this->v + 1; }
        };
        _tree_ class L : public N { };
        int main() {
            N* root = ...;
            root->f(); root->f(); root->f(); root->f(); root->f();
        }
        """
        cache = CompileCache()
        options = CompileOptions(
            limits=FusionLimits(max_sequence=2), emit=False
        )
        result = pipeline_compile(source, cache=cache, options=options)
        assert len(result.fused.entry_groups) == 3  # 2 + 2 + 1
        assert all(u.width <= 2 for u in result.fused.units.values())
