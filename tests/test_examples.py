"""Smoke tests: every example script runs to completion in-process."""

import runpy
import sys
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name] + list(argv)
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        _run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "visit ratio: 0.50" in out
        assert "_fuse__" in out

    def test_document_layout(self, capsys):
        _run_example("document_layout.py", ["4"])
        out = capsys.readouterr().out
        assert "node visits" in out
        assert "first page" in out
        assert "t" in out  # some text box got drawn

    def test_ast_optimizer(self, capsys):
        _run_example("ast_optimizer.py")
        out = capsys.readouterr().out
        assert "semantics preserved" in out
        assert "v1 = 7;" in out  # constant propagation + folding happened

    def test_piecewise_functions(self, capsys):
        _run_example("piecewise_functions.py")
        out = capsys.readouterr().out
        assert "integral =" in out
        assert "value    =" in out
        assert out.count("equation:") == 3

    def test_nbody_fmm(self, capsys):
        _run_example("nbody_fmm.py", ["1000"])
        out = capsys.readouterr().out
        assert "total potential" in out
        assert "computeLocals + FmmCell::evaluatePotentials".replace(
            "computeLocals", "computeLocals"
        ) in out or "computeLocals" in out
