"""Tests for automaton algebra: union, intersection, emptiness, pruning.

Includes hypothesis property tests cross-checking `intersects` against a
brute-force enumeration of both languages.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.automata import (
    ANY,
    Automaton,
    enumerate_paths,
    from_path,
    intersect,
    intersects,
    prune,
    union,
)


class TestUnion:
    def test_union_of_two_paths(self):
        a = from_path(["x"], accept_prefixes=False)
        b = from_path(["y"], accept_prefixes=False)
        u = union([a, b])
        assert u.accepts(["x"])
        assert u.accepts(["y"])
        assert not u.accepts(["z"])

    def test_union_empty_iterable_is_empty_language(self):
        u = union([])
        assert not u.accepts([])
        assert not u.accepts(["x"])

    def test_union_preserves_prefix_acceptance(self):
        a = from_path(["a", "b"], accept_prefixes=True)
        b = from_path(["c"], accept_prefixes=True)
        u = union([a, b])
        assert u.accepts(["a"])
        assert u.accepts(["a", "b"])
        assert u.accepts(["c"])


class TestIntersection:
    def test_disjoint_paths_do_not_intersect(self):
        a = from_path(["x"], accept_prefixes=False)
        b = from_path(["y"], accept_prefixes=False)
        assert not intersects(a, b)

    def test_identical_paths_intersect(self):
        a = from_path(["x", "y"], accept_prefixes=False)
        b = from_path(["x", "y"], accept_prefixes=False)
        assert intersects(a, b)

    def test_write_vs_read_prefix_dependence(self):
        # Writing a.b conflicts with reading a.b.c (prefix a.b is read).
        write = from_path(["a", "b"], accept_prefixes=False)
        read = from_path(["a", "b", "c"], accept_prefixes=True)
        assert intersects(write, read)

    def test_write_full_path_does_not_hit_shorter_write(self):
        # Writing a.b.c does not write a.b (prefixes are only read).
        write_deep = from_path(["a", "b", "c"], accept_prefixes=False)
        write_shallow = from_path(["a", "b"], accept_prefixes=False)
        assert not intersects(write_deep, write_shallow)

    def test_any_suffix_conflicts_with_deep_access(self):
        # delete this->c writes every path under c.
        delete_write = from_path(["c"], accept_prefixes=False, any_suffix=True)
        deep_read = from_path(["c", "x", "y"], accept_prefixes=True)
        assert intersects(delete_write, deep_read)

    def test_any_does_not_invent_missing_prefix(self):
        delete_write = from_path(["c"], accept_prefixes=False, any_suffix=True)
        other = from_path(["d", "x"], accept_prefixes=True)
        assert not intersects(delete_write, other)

    def test_empty_automaton_never_intersects(self):
        empty = Automaton()
        a = from_path(["x"], accept_prefixes=True)
        assert not intersects(empty, a)
        assert not intersects(a, empty)

    def test_intersect_materializes_witness_language(self):
        a = union(
            [
                from_path(["x"], accept_prefixes=False),
                from_path(["y"], accept_prefixes=False),
            ]
        )
        b = union(
            [
                from_path(["y"], accept_prefixes=False),
                from_path(["z"], accept_prefixes=False),
            ]
        )
        product = intersect(a, b)
        assert product.accepts(["y"])
        assert not product.accepts(["x"])
        assert not product.accepts(["z"])

    def test_any_vs_any(self):
        a = Automaton()
        end_a = a.add_state(accepting=True)
        a.add_transition(a.start, ANY, end_a)
        b = Automaton()
        end_b = b.add_state(accepting=True)
        b.add_transition(b.start, ANY, end_b)
        assert intersects(a, b)
        product = intersect(a, b)
        assert product.accepts(["anything"])

    def test_loops_terminate(self):
        # Mutual recursion produces loops in call automata; intersection
        # over looped machines must still terminate.
        a = Automaton()
        hub = a.add_state(accepting=True)
        a.add_transition(a.start, "next", hub)
        a.add_transition(hub, "next", hub)
        b = from_path(["next", "next", "next"], accept_prefixes=False)
        assert intersects(a, b)


class TestPrune:
    def test_prune_removes_dead_states(self):
        automaton = Automaton()
        live = automaton.add_state(accepting=True)
        dead = automaton.add_state()  # unreachable from start->accept path
        automaton.add_transition(automaton.start, "a", live)
        automaton.add_transition(dead, "b", dead)
        pruned = prune(automaton)
        assert pruned.num_states == 2
        assert pruned.accepts(["a"])

    def test_prune_empty_language(self):
        automaton = Automaton()
        sink = automaton.add_state()
        automaton.add_transition(automaton.start, "a", sink)
        pruned = prune(automaton)
        assert pruned.is_trivially_empty()
        assert not pruned.accepts(["a"])


class TestEnumerate:
    def test_enumeration_matches_accepts(self):
        automaton = union(
            [
                from_path(["a", "b"], accept_prefixes=True),
                from_path(["c"], accept_prefixes=False, any_suffix=True),
            ]
        )
        alphabet = {"a", "b", "c"}
        enumerated = enumerate_paths(automaton, alphabet, max_length=3)
        for length in range(4):
            for combo in itertools.product(sorted(alphabet), repeat=length):
                assert automaton.accepts(combo) == (combo in enumerated)


# ---------------------------------------------------------------------------
# Property tests: random automata, brute-force cross-checks.
# ---------------------------------------------------------------------------

_ALPHABET = ["a", "b", "c"]


@st.composite
def random_automaton(draw):
    n_states = draw(st.integers(min_value=1, max_value=4))
    automaton = Automaton()
    states = [automaton.start]
    for _ in range(n_states - 1):
        states.append(automaton.add_state())
    for state in states:
        if draw(st.booleans()):
            automaton.set_accepting(state)
    n_edges = draw(st.integers(min_value=0, max_value=6))
    for _ in range(n_edges):
        src = draw(st.sampled_from(states))
        dst = draw(st.sampled_from(states))
        label = draw(st.sampled_from(_ALPHABET + [ANY]))
        automaton.add_transition(src, label, dst)
    return automaton


@given(random_automaton(), random_automaton())
@settings(max_examples=120, deadline=None)
def test_intersects_agrees_with_bruteforce(a, b):
    paths_a = enumerate_paths(a, _ALPHABET, max_length=5)
    paths_b = enumerate_paths(b, _ALPHABET, max_length=5)
    brute = bool(paths_a & paths_b)
    if brute:
        # A shared short path must be found by the product search.
        assert intersects(a, b)
    else:
        # The product search may still find longer witnesses; verify any
        # claimed emptiness against brute force (soundness direction).
        if not intersects(a, b):
            assert not brute


@given(random_automaton(), random_automaton())
@settings(max_examples=80, deadline=None)
def test_intersect_language_is_conjunction(a, b):
    product = intersect(a, b)
    for path in enumerate_paths(product, _ALPHABET, max_length=4):
        assert a.accepts(path)
        assert b.accepts(path)


@given(random_automaton(), random_automaton())
@settings(max_examples=80, deadline=None)
def test_union_language_is_disjunction(a, b):
    combined = union([a, b])
    paths = enumerate_paths(combined, _ALPHABET, max_length=4)
    expected = enumerate_paths(a, _ALPHABET, max_length=4) | enumerate_paths(
        b, _ALPHABET, max_length=4
    )
    assert paths == expected


@given(random_automaton())
@settings(max_examples=80, deadline=None)
def test_prune_preserves_language(automaton):
    pruned = prune(automaton)
    assert enumerate_paths(automaton, _ALPHABET, max_length=4) == enumerate_paths(
        pruned, _ALPHABET, max_length=4
    )
