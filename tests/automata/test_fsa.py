"""Unit tests for the NFA core: construction, simulation, path automata."""

from repro.automata import ANY, EPSILON, Automaton, from_path


class TestBasicConstruction:
    def test_new_automaton_rejects_everything(self):
        automaton = Automaton()
        assert not automaton.accepts([])
        assert not automaton.accepts(["x"])

    def test_single_accepting_start(self):
        automaton = Automaton()
        automaton.set_accepting(automaton.start)
        assert automaton.accepts([])
        assert not automaton.accepts(["x"])

    def test_simple_chain(self):
        automaton = Automaton()
        mid = automaton.add_state()
        end = automaton.add_state(accepting=True)
        automaton.add_transition(automaton.start, "a", mid)
        automaton.add_transition(mid, "b", end)
        assert automaton.accepts(["a", "b"])
        assert not automaton.accepts(["a"])
        assert not automaton.accepts(["b"])
        assert not automaton.accepts(["a", "b", "c"])

    def test_nondeterminism(self):
        automaton = Automaton()
        s1 = automaton.add_state(accepting=True)
        s2 = automaton.add_state()
        s3 = automaton.add_state(accepting=True)
        automaton.add_transition(automaton.start, "a", s1)
        automaton.add_transition(automaton.start, "a", s2)
        automaton.add_transition(s2, "b", s3)
        assert automaton.accepts(["a"])
        assert automaton.accepts(["a", "b"])
        assert not automaton.accepts(["b"])

    def test_epsilon_closure(self):
        automaton = Automaton()
        s1 = automaton.add_state()
        s2 = automaton.add_state(accepting=True)
        automaton.add_transition(automaton.start, EPSILON, s1)
        automaton.add_transition(s1, "x", s2)
        assert automaton.accepts(["x"])
        closure = automaton.epsilon_closure([automaton.start])
        assert s1 in closure

    def test_any_transition_matches_all_symbols(self):
        automaton = Automaton()
        end = automaton.add_state(accepting=True)
        automaton.add_transition(automaton.start, ANY, end)
        assert automaton.accepts(["x"])
        assert automaton.accepts(["anything"])
        assert not automaton.accepts([])

    def test_any_self_loop(self):
        automaton = Automaton()
        end = automaton.add_state(accepting=True)
        automaton.add_transition(automaton.start, "f", end)
        automaton.add_transition(end, ANY, end)
        assert automaton.accepts(["f"])
        assert automaton.accepts(["f", "g", "h"])
        assert not automaton.accepts(["g"])

    def test_alphabet_excludes_sentinels(self):
        automaton = Automaton()
        end = automaton.add_state(accepting=True)
        automaton.add_transition(automaton.start, "f", end)
        automaton.add_transition(end, ANY, end)
        automaton.add_transition(automaton.start, EPSILON, end)
        assert automaton.alphabet() == {"f"}

    def test_copy_is_independent(self):
        automaton = Automaton("orig")
        end = automaton.add_state(accepting=True)
        automaton.add_transition(automaton.start, "a", end)
        clone = automaton.copy()
        extra = clone.add_state(accepting=True)
        clone.add_transition(clone.start, "b", extra)
        assert clone.accepts(["b"])
        assert not automaton.accepts(["b"])
        assert automaton.accepts(["a"]) and clone.accepts(["a"])

    def test_to_dot_mentions_labels(self):
        automaton = from_path(["a", "b"], accept_prefixes=True)
        dot = automaton.to_dot()
        assert "digraph" in dot
        assert '"a"' in dot and '"b"' in dot


class TestFromPath:
    def test_read_path_accepts_all_prefixes(self):
        automaton = from_path(["a", "b", "c"], accept_prefixes=True)
        assert automaton.accepts(["a"])
        assert automaton.accepts(["a", "b"])
        assert automaton.accepts(["a", "b", "c"])
        assert not automaton.accepts([])
        assert not automaton.accepts(["b"])

    def test_write_path_accepts_only_full_sequence(self):
        automaton = from_path(["a", "b", "c"], accept_prefixes=False)
        assert automaton.accepts(["a", "b", "c"])
        assert not automaton.accepts(["a"])
        assert not automaton.accepts(["a", "b"])

    def test_any_suffix_covers_subfields(self):
        automaton = from_path(["c"], accept_prefixes=False, any_suffix=True)
        assert automaton.accepts(["c"])
        assert automaton.accepts(["c", "x"])
        assert automaton.accepts(["c", "x", "y"])
        assert not automaton.accepts(["x"])

    def test_empty_path_accepts_empty_string(self):
        automaton = from_path([], accept_prefixes=False)
        assert automaton.accepts([])

    def test_attach_glues_suffix_language(self):
        base = Automaton()
        hub = base.add_state()
        base.add_transition(base.start, "child", hub)
        suffix = from_path(["x"], accept_prefixes=False)
        base.attach(suffix, hub)
        assert base.accepts(["child", "x"])
        assert not base.accepts(["x"])
