"""Tests for the §3.5 loop extension: `while` inside traversal bodies."""

import pytest

from repro.errors import ValidationError
from repro.frontend import parse_program
from repro.fusion import fuse_program
from repro.ir.printer import print_program
from repro.ir.stmts import While
from repro.runtime import Heap, Interpreter, Node
from repro.treefuser import lower_program, lower_tree

LOOP_SOURCE = """
_tree_ class N {
    _child_ N* kid;
    int value = 0;
    int total = 0;
    int steps = 0;
    _traversal_ virtual void sumDigits() {}
    _traversal_ virtual void scale() {}
};
_tree_ class I : public N {
    _traversal_ void sumDigits() {
        int v = this->value;
        int acc = 0;
        while (v > 0) {
            acc = acc + v % 10;
            v = v / 10;
            this->steps = this->steps + 1;
        }
        this->total = acc;
        this->kid->sumDigits();
    }
    _traversal_ void scale() {
        this->value = this->value * 2;
        this->kid->scale();
    }
};
_tree_ class L : public N { };
int main() { N* root = ...; root->sumDigits(); root->scale(); }
"""


def _chain(program, heap, values):
    node = Node.new(program, heap, "L")
    for value in reversed(values):
        node = Node.new(program, heap, "I", kid=node, value=value)
    return node


class TestWhileExtension:
    def test_parses_and_validates(self):
        program = parse_program(LOOP_SOURCE)
        body = program.tree_types["I"].methods["sumDigits"].body
        assert any(isinstance(s, While) for s in body)

    def test_loop_executes_correctly(self):
        program = parse_program(LOOP_SOURCE)
        heap = Heap(program)
        root = _chain(program, heap, [947, 55])
        interp = Interpreter(program, heap)
        interp.run_entry(root)
        assert root.get("total") == 9 + 4 + 7
        assert root.get("steps") == 3
        assert root.get("kid").get("total") == 10

    def test_traverse_inside_while_rejected(self):
        source = """
        _tree_ class N {
            _child_ N* kid;
            int x = 0;
            _traversal_ virtual void go() {}
        };
        _tree_ class I : public N {
            _traversal_ void go() {
                while (this->x > 0) { this->kid->go(); }
            }
        };
        """
        with pytest.raises(ValidationError, match="loops may not invoke"):
            parse_program(source)

    def test_nonterminating_loop_caught(self):
        source = """
        _tree_ class N {
            int x = 0;
            _traversal_ void go() {
                while (1 > 0) { this->x = this->x + 1; }
            }
        };
        int main() { N* root = ...; root->go(); }
        """
        from repro.errors import RuntimeFailure

        program = parse_program(source)
        heap = Heap(program)
        root = Node.new(program, heap, "N")
        interp = Interpreter(program, heap)
        with pytest.raises(RuntimeFailure, match="iterations"):
            interp.run_entry(root)

    def test_loops_fuse_with_neighbouring_passes(self):
        """The loop's accesses are summarized like a branch's, so the two
        traversals still fuse — and results agree with unfused."""
        program = parse_program(LOOP_SOURCE)
        fused = fuse_program(program)
        values = [12, 305, 7]
        heap_a = Heap(program)
        root_a = _chain(program, heap_a, values)
        Interpreter(program, heap_a).run_entry(root_a)
        heap_b = Heap(program)
        root_b = _chain(program, heap_b, values)
        interp_b = Interpreter(program, heap_b)
        interp_b.run_fused(fused, root_b)
        assert root_a.snapshot(program) == root_b.snapshot(program)
        # sumDigits+scale fused into one visit per node
        assert interp_b.stats.node_visits * 2 <= len(values) * 2 + 4

    def test_loop_dependences_respected(self):
        """scale writes `value` which sumDigits' loop reads: fusion must
        keep sumDigits' loop before scale's write at each node."""
        program = parse_program(LOOP_SOURCE)
        fused = fuse_program(program)
        unit = fused.units[("I::sumDigits", "I::scale")]
        from repro.fusion.fused_ir import GuardedStmt

        positions = {}
        for index, item in enumerate(unit.body):
            if isinstance(item, GuardedStmt):
                text = str(item.stmt)
                if text.startswith("while"):
                    positions["loop"] = index
                if "value * 2" in text:
                    positions["scale_write"] = index
        assert positions["loop"] < positions["scale_write"]

    def test_printer_round_trips_loops(self):
        program = parse_program(LOOP_SOURCE)
        printed = print_program(program)
        assert "while ((v > 0)) {" in printed
        reparsed = parse_program(printed)
        assert any(
            isinstance(s, While)
            for s in reparsed.tree_types["I"].methods["sumDigits"].body
        )

    def test_treefuser_lowering_handles_loops(self):
        program = parse_program(LOOP_SOURCE)
        lowered = lower_program(program)
        heap = Heap(lowered.program)
        src_heap = Heap(program)
        twin = lower_tree(
            program, lowered, heap, _chain(program, src_heap, [947])
        )
        interp = Interpreter(lowered.program, heap)
        interp.run_entry(twin)
        assert twin.get("total") == 20
