"""Printer coverage: every statement/expression form renders and
round-trips through the parser."""

from repro.frontend import parse_program
from repro.ir.printer import print_method, print_program

KITCHEN_SINK = """
int G;

class Pair { int a; int b; };

_pure_ int helper(int v);

_abstract_ _tree_ class Base {
    _child_ Base* kid;
    int x = 0;
    double d = 0;
    bool flag = false;
    Pair pair;
    _traversal_ virtual void go(int p) {}
};

_tree_ class Mid : public Base {
    int extra = 0;
    _traversal_ void go(int p) {
        int local = p + 1;
        double ratio = this->d / 2.0;
        Base* const k = this->kid;
        k->x = helper(local);
        this->pair.a = this->pair.b + G;
        G = G + 1;
        if (this->flag && (this->x > 3 || local != 0)) {
            this->x = -this->x;
        } else {
            this->x = this->x % 5;
        }
        if (this->extra >= 10) return;
        delete this->kid;
        this->kid = new Leaf();
        static_cast<Leaf*>(this->kid)->x = 7;
        this->kid->go(local * 2);
        this->go(local - 1);
    }
};

_tree_ class Leaf : public Base { };

int main() {
    Base* root = ...;
    root->go(3);
    root->go(-1);
}
"""


def _impls():
    return {"helper": lambda v: v}


class TestPrinter:
    def test_kitchen_sink_round_trips(self):
        program = parse_program(KITCHEN_SINK, pure_impls=_impls())
        printed = print_program(program)
        reparsed = parse_program(printed, pure_impls=_impls())
        assert set(reparsed.tree_types) == set(program.tree_types)
        reprinted = print_program(reparsed)
        # fixpoint: printing the reparsed program is stable
        assert reprinted == printed

    def test_all_statement_forms_render(self):
        program = parse_program(KITCHEN_SINK, pure_impls=_impls())
        text = print_method(program.tree_types["Mid"].methods["go"])
        for fragment in [
            "int local = (p + 1);",
            "Base* const k =",
            "this->pair.a",
            "G = (G + 1);",
            "} else {",
            "return;",
            "delete this->kid;",
            "this->kid = new Leaf();",
            "static_cast<Leaf*>(this->kid)->x = 7;",
            "this->kid->go((local * 2));",
            "this->go((local - 1));",
        ]:
            assert fragment in text, fragment

    def test_type_declarations_render(self):
        program = parse_program(KITCHEN_SINK, pure_impls=_impls())
        text = print_program(program)
        assert "_abstract_ _tree_ class Base {" in text
        assert "_child_ Base* kid;" in text
        assert "class Pair {" in text
        assert "_pure_ int helper(int v);" in text
        assert "int G;" in text
        assert "root->go(3);" in text
        assert "root->go(-1);" in text

    def test_entry_args_round_trip(self):
        program = parse_program(KITCHEN_SINK, pure_impls=_impls())
        reparsed = parse_program(print_program(program), pure_impls=_impls())
        args = [call.args[0].value for call in reparsed.entry]
        assert args == [3, -1]

    def test_bool_and_char_constants(self):
        source = """
        _tree_ class A {
            bool flag = false;
            char c = 'x';
            _traversal_ void go() {
                this->flag = true;
                this->c = 'y';
            }
        };
        """
        program = parse_program(source)
        printed = print_program(program)
        assert "this->flag = true;" in printed
        assert "'y'" in printed
        reparsed = parse_program(printed)
        assert "A" in reparsed.tree_types
