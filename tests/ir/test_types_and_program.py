"""Tests for the type-level IR and program resolution tables."""

import pytest

from repro.errors import ValidationError
from repro.ir import Program, TreeType, OpaqueClass
from repro.ir.method import TraversalMethod

from tests.fixtures import fig2_program


def _hierarchy() -> Program:
    program = Program("t")
    base = TreeType("Base", abstract=True)
    base.add_child("next", "Base")
    base.add_data("value", "int")
    mid = TreeType("Mid", bases=["Base"])
    mid.add_data("extra", "int")
    leaf = TreeType("Leaf", bases=["Mid"])
    program.add_tree_type(base)
    program.add_tree_type(mid)
    program.add_tree_type(leaf)
    return program


class TestHierarchy:
    def test_mro_linear_chain(self):
        program = _hierarchy().finalize()
        assert program.mro("Leaf") == ["Leaf", "Mid", "Base"]

    def test_subtypes_include_self_and_descendants(self):
        program = _hierarchy().finalize()
        assert program.subtypes("Base") == {"Base", "Mid", "Leaf"}
        assert program.subtypes("Leaf") == {"Leaf"}

    def test_concrete_subtypes_excludes_abstract(self):
        program = _hierarchy().finalize()
        assert program.concrete_subtypes("Base") == ["Leaf", "Mid"]

    def test_inherited_fields_visible(self):
        program = _hierarchy().finalize()
        fields = program.fields_of("Leaf")
        assert set(fields) == {"next", "value", "extra"}
        assert fields["value"].owner == "Base"

    def test_field_shadowing_rejected(self):
        program = Program("t")
        base = TreeType("Base")
        base.add_data("x", "int")
        derived = TreeType("Derived", bases=["Base"])
        derived.add_data("x", "int")
        program.add_tree_type(base)
        program.add_tree_type(derived)
        with pytest.raises(ValidationError, match="shadowing"):
            program.finalize()

    def test_unknown_base_rejected(self):
        program = Program("t")
        program.add_tree_type(TreeType("Orphan", bases=["Missing"]))
        with pytest.raises(ValidationError, match="unknown base"):
            program.finalize()

    def test_inheritance_cycle_rejected(self):
        program = Program("t")
        program.add_tree_type(TreeType("A", bases=["B"]))
        program.add_tree_type(TreeType("B", bases=["A"]))
        with pytest.raises(ValidationError, match="cycle"):
            program.finalize()

    def test_child_of_non_tree_type_rejected(self):
        program = Program("t")
        node = TreeType("Node")
        node.add_child("bad", "int")
        program.add_tree_type(node)
        with pytest.raises(ValidationError, match="not a tree type"):
            program.finalize()

    def test_tree_type_as_data_field_rejected(self):
        program = Program("t")
        a = TreeType("A")
        b = TreeType("B")
        b.add_data("bad", "A")
        program.add_tree_type(a)
        program.add_tree_type(b)
        with pytest.raises(ValidationError, match="use _child_"):
            program.finalize()

    def test_duplicate_type_name_rejected(self):
        program = Program("t")
        program.add_tree_type(TreeType("A"))
        with pytest.raises(ValidationError, match="duplicate"):
            program.add_tree_type(TreeType("A"))

    def test_opaque_and_tree_namespaces_shared(self):
        program = Program("t")
        program.add_opaque_class(OpaqueClass("A"))
        with pytest.raises(ValidationError, match="duplicate"):
            program.add_tree_type(TreeType("A"))


class TestDispatch:
    def test_override_resolution(self):
        program = _hierarchy()
        base_m = TraversalMethod(name="go", owner="Base", virtual=True)
        mid_m = TraversalMethod(name="go", owner="Mid", virtual=True)
        program.tree_types["Base"].add_method(base_m)
        program.tree_types["Mid"].add_method(mid_m)
        program.finalize()
        assert program.resolve_method("Base", "go") is base_m
        assert program.resolve_method("Mid", "go") is mid_m
        assert program.resolve_method("Leaf", "go") is mid_m

    def test_signature_mismatch_rejected(self):
        from repro.ir.method import Param

        program = _hierarchy()
        program.tree_types["Base"].add_method(
            TraversalMethod(name="go", owner="Base", virtual=True)
        )
        program.tree_types["Mid"].add_method(
            TraversalMethod(
                name="go", owner="Mid", virtual=True,
                params=(Param("x", "int"),),
            )
        )
        with pytest.raises(ValidationError, match="different signature"):
            program.finalize()

    def test_common_supertype(self):
        program = fig2_program()
        assert program.common_supertype(["TextBox", "Group"]) == "Element"
        assert program.common_supertype(["TextBox"]) == "TextBox"
        assert program.common_supertype(["TextBox", "End", "Group"]) == "Element"


class TestFig2Resolution:
    def test_types_present(self):
        program = fig2_program()
        assert set(program.tree_types) == {"Element", "TextBox", "Group", "End"}
        assert set(program.opaque_classes) == {"String", "BorderInfo"}
        assert set(program.globals) == {"CHAR_WIDTH"}

    def test_virtual_fixup_marks_overrides(self):
        program = fig2_program()
        method = program.tree_types["TextBox"].methods["computeWidth"]
        assert method.virtual

    def test_entry_sequence(self):
        program = fig2_program()
        assert program.root_type_name == "Element"
        assert [c.method_name for c in program.entry] == [
            "computeWidth",
            "computeHeight",
        ]

    def test_end_inherits_empty_traversals(self):
        program = fig2_program()
        method = program.resolve_method("End", "computeWidth")
        assert method.owner == "Element"
        assert method.body == []
