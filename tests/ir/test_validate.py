"""Validator coverage: every language restriction of Fig. 3."""

import pytest

from repro.errors import FrontendError, ValidationError
from repro.frontend import parse_program
from repro.ir.validate import LanguageMode


def rejects(source, match=None, mode=LanguageMode.GRAFTER):
    with pytest.raises((ValidationError, FrontendError), match=match):
        parse_program(source, mode=mode)


class TestStatementRestrictions:
    def test_traverse_under_if_rejected(self):
        rejects("""
        _tree_ class N {
            _child_ N* kid;
            int f = 0;
            _traversal_ virtual void go() {}
        };
        _tree_ class I : public N {
            _traversal_ void go() { if (this->f == 1) { this->kid->go(); } }
        };
        """, "conditional return")

    def test_traverse_under_if_allowed_in_treefuser_mode(self):
        parse_program("""
        _tree_ class N {
            _child_ N* kid;
            int f = 0;
            _traversal_ virtual void go() {}
        };
        _tree_ class I : public N {
            _traversal_ void go() { if (this->f == 1) { this->kid->go(); } }
        };
        """, mode=LanguageMode.TREEFUSER)

    def test_new_of_incompatible_type_rejected(self):
        rejects("""
        _tree_ class A { _child_ B* kid; _traversal_ void go() {
            this->kid = new A();
        } };
        _tree_ class B { int x = 0; };
        """, "assigned to child of type")

    def test_new_requires_descendant_path(self):
        # `new` must target a child slot; the parser rejects assigning a
        # fresh node anywhere else
        rejects("""
        _tree_ class A { int x = 0; _traversal_ void go() {
            this->x = new A();
        } };
        """)

    def test_duplicate_local_rejected(self):
        rejects("""
        _tree_ class A { int x = 0; _traversal_ void go() {
            int t = 1;
            int t = 2;
        } };
        """, "duplicate local")

    def test_alias_must_be_tree_type(self):
        rejects("""
        _tree_ class A {
            _child_ A* kid;
            int x = 0;
            _traversal_ void go() {
                int* const k = this->kid;
            }
        };
        """)

    def test_unknown_global_rejected(self):
        rejects("""
        _tree_ class A { int x = 0; _traversal_ void go() {
            this->x = MISSING;
        } };
        """, "unknown name")

    def test_pure_call_arity_checked(self):
        rejects("""
        _pure_ int one(int a);
        _tree_ class A { int x = 0; _traversal_ void go() {
            this->x = one(1, 2);
        } };
        """, "passes 2")

    def test_traverse_arity_checked(self):
        rejects("""
        _tree_ class N {
            _child_ N* kid;
            _traversal_ virtual void go(int a) {}
        };
        _tree_ class I : public N {
            _traversal_ void go(int a) { this->kid->go(); }
        };
        """, "passes 0")


class TestTypeRestrictions:
    def test_param_must_be_by_value(self):
        rejects("""
        _tree_ class B { int y = 0; };
        _tree_ class A {
            int x = 0;
            _traversal_ void go(B b) {}
        };
        """, "primitive or an opaque")

    def test_local_of_tree_type_rejected(self):
        rejects("""
        _tree_ class A {
            int x = 0;
            _traversal_ void go() { A t; }
        };
        """)

    def test_entry_root_must_be_tree_type(self):
        rejects("""
        _tree_ class A { int x = 0; _traversal_ void go() {} };
        int main() { Nope* root = ...; root->go(); }
        """, "not a tree type")

    def test_cast_to_unrelated_type_rejected(self):
        rejects("""
        _tree_ class A { _child_ A* kid; int x = 0;
            _traversal_ void go() {
                static_cast<B*>(this->kid)->y = 1;
            }
        };
        _tree_ class B { int y = 0; };
        """, "unrelated")

    def test_cast_to_subtype_accepted(self):
        parse_program("""
        _tree_ class A { _child_ A* kid; int x = 0;
            _traversal_ virtual void go() {}
        };
        _tree_ class A2 : public A { int y = 0;
            _traversal_ void go() {
                static_cast<A2*>(this->kid)->y = 1;
            }
        };
        """)

    def test_opaque_class_fields_must_be_primitive(self):
        rejects("""
        class Meta { Inner i; };
        class Inner { int x; };
        _tree_ class A { int x = 0; };
        """, "must be primitive")


class TestReturnAndControl:
    def test_bare_return_accepted_everywhere(self):
        parse_program("""
        _tree_ class A {
            _child_ A* kid;
            int x = 0;
            _traversal_ virtual void go() {}
        };
        _tree_ class I : public A {
            _traversal_ void go() {
                if (this->x > 3) return;
                this->kid->go();
                return;
            }
        };
        _tree_ class L : public A { };
        """)

    def test_else_branch_supported(self):
        program = parse_program("""
        _tree_ class A {
            int x = 0;
            int y = 0;
            _traversal_ void go() {
                if (this->x > 0) { this->y = 1; } else { this->y = 2; }
            }
        };
        """)
        body = program.tree_types["A"].methods["go"].body
        assert body[0].else_body
