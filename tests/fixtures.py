"""Shared program fixtures used across the test suite.

``FIG2_SOURCE`` is the paper's running example (Fig. 2): a render-tree
fragment where elements compute widths and heights. ``FIG1_SOURCE``
reproduces the schematic example of Fig. 1 (two traversals with a
dependence through ``this.x``).
"""

from repro.frontend import parse_program

FIG2_SOURCE = """
int CHAR_WIDTH;

class String { int Length; };
class BorderInfo { int Size; };

_abstract_ _tree_ class Element {
    _child_ Element* Next;
    int Height = 0;
    int Width = 0;
    int MaxHeight = 0;
    int TotalWidth = 0;
    _traversal_ virtual void computeWidth() {}
    _traversal_ virtual void computeHeight() {}
};

_tree_ class TextBox : public Element {
    String Text;
    _traversal_ void computeWidth() {
        this->Next->computeWidth();
        this->Width = this->Text.Length;
        this->TotalWidth = this->Next->Width + this->Width;
    }
    _traversal_ void computeHeight() {
        this->Next->computeHeight();
        this->Height = this->Text.Length * (this->Width / CHAR_WIDTH) + 1;
        this->MaxHeight = this->Height;
        if (this->Next->Height > this->Height) {
            this->MaxHeight = this->Next->Height;
        }
    }
};

_tree_ class Group : public Element {
    _child_ Element* Content;
    BorderInfo Border;
    _traversal_ void computeWidth() {
        this->Content->computeWidth();
        this->Next->computeWidth();
        this->Width = this->Content->Width + this->Border.Size * 2;
        this->TotalWidth = this->Width + this->Next->Width;
    }
    _traversal_ void computeHeight() {
        this->Content->computeHeight();
        this->Next->computeHeight();
        this->Height = this->Content->MaxHeight + this->Border.Size * 2;
        this->MaxHeight = this->Height;
        if (this->Next->Height > this->Height) {
            this->MaxHeight = this->Next->Height;
        }
    }
};

_tree_ class End : public Element {
};

int main() {
    Element* ElementsList = ...;
    ElementsList->computeWidth();
    ElementsList->computeHeight();
}
"""


FIG1_SOURCE = """
_tree_ class Node {
    _child_ Node* child;
    int x = 0;
    int y = 0;
    int stop = 0;
    _traversal_ virtual void f1() {}
    _traversal_ virtual void f2() {}
    _traversal_ virtual void f3() {}
    _traversal_ virtual void f4() {}
};

_tree_ class Inner : public Node {
    _traversal_ void f1() {
        this->child->f3();
        this->x = this->y + 1;
    }
    _traversal_ void f2() {
        this->y = this->x;
        this->child->f4();
    }
    _traversal_ void f3() {
        this->child->f3();
        this->y = this->y * 2;
    }
    _traversal_ void f4() {
        this->child->f4();
        this->x = this->x + 3;
    }
};

_tree_ class LeafEnd : public Node {
};

int main() {
    Node* root = ...;
    root->f1();
    root->f2();
}
"""


def fig2_program():
    return parse_program(FIG2_SOURCE, name="fig2")


def fig1_program():
    return parse_program(FIG1_SOURCE, name="fig1")
