"""TreeFuser lowering tests: structure, semantics, and fusion behaviour."""

import random

import pytest

from repro.frontend import parse_program
from repro.fusion import fuse_program
from repro.fusion.fused_ir import GroupCall
from repro.runtime import Heap, Interpreter, Node
from repro.runtime.values import ObjectValue
from repro.treefuser import lower_program, lower_tree

from tests.fixtures import fig2_program
from tests.generators import random_program_source, random_tree


def _fig2_tree(program, heap):
    def textbox(n, nxt):
        return Node.new(
            program, heap, "TextBox",
            Text=ObjectValue("String", {"Length": n}), Next=nxt,
        )

    content = textbox(5, textbox(7, Node.new(program, heap, "End")))
    group = Node.new(program, heap, "Group")
    group.set("Content", content)
    group.set("Next", textbox(3, Node.new(program, heap, "End")))
    group.get("Border").set("Size", 2)
    return group


class TestLoweredStructure:
    def test_single_tree_type_with_tag(self):
        lowered = lower_program(fig2_program())
        assert set(lowered.program.tree_types) == {"TNode"}
        tnode = lowered.program.tree_types["TNode"]
        assert "tag" in tnode.data
        assert set(tnode.children) == {"Element_Next", "Group_Content"}

    def test_tags_cover_concrete_types(self):
        lowered = lower_program(fig2_program())
        assert set(lowered.tags) == {"End", "Group", "TextBox"}
        assert len(set(lowered.tags.values())) == 3

    def test_one_function_per_traversal_name(self):
        lowered = lower_program(fig2_program())
        tnode = lowered.program.tree_types["TNode"]
        assert set(tnode.methods) == {"computeWidth", "computeHeight"}
        assert not tnode.methods["computeWidth"].virtual

    def test_calls_become_conditional_blocks(self):
        from repro.ir.stmts import If, TraverseStmt

        lowered = lower_program(fig2_program())
        body = lowered.program.tree_types["TNode"].methods["computeWidth"].body
        assert all(isinstance(s, If) for s in body)
        calls = [
            s for s in body
            if len(s.then_body) == 1 and isinstance(s.then_body[0], TraverseStmt)
        ]
        assert len(calls) == 3  # Group: Content+Next, TextBox: Next

    def test_lowered_tree_mirrors_structure(self):
        program = fig2_program()
        lowered = lower_program(program)
        heap_src = Heap(program)
        root = _fig2_tree(program, heap_src)
        heap_dst = Heap(lowered.program)
        twin = lower_tree(program, lowered, heap_dst, root)
        assert twin.get("tag") == lowered.tag_of("Group")
        assert twin.get("Border").get("Size") == 2
        content = twin.get("Group_Content")
        assert content.get("tag") == lowered.tag_of("TextBox")
        assert content.get("Text").get("Length") == 5
        assert root.count_nodes(program) == twin.count_nodes(lowered.program)


class TestLoweredSemantics:
    def test_lowered_unfused_matches_heterogeneous(self):
        program = fig2_program()
        lowered = lower_program(program)
        # heterogeneous run
        heap_a = Heap(program)
        root_a = _fig2_tree(program, heap_a)
        interp_a = Interpreter(program, heap_a)
        interp_a.globals["CHAR_WIDTH"] = 2
        interp_a.run_entry(root_a)
        # lowered run
        heap_b = Heap(lowered.program)
        root_b = lower_tree(program, lowered, heap_b, _fig2_tree(program, Heap(program)))
        interp_b = Interpreter(lowered.program, heap_b)
        interp_b.globals["CHAR_WIDTH"] = 2
        interp_b.run_entry(root_b)
        assert root_a.get("Width") == root_b.get("Width")
        assert root_a.get("MaxHeight") == root_b.get("MaxHeight")
        # baselines do the same work: identical node visits (paper §5.1)
        assert interp_a.stats.node_visits == interp_b.stats.node_visits
        # ...but the tagged union pays conditional overhead
        assert interp_b.stats.instructions > interp_a.stats.instructions

    def test_lowered_fused_matches_lowered_unfused(self):
        program = fig2_program()
        lowered = lower_program(program)
        fused = fuse_program(lowered.program)
        heap_a = Heap(lowered.program)
        root_a = lower_tree(program, lowered, heap_a, _fig2_tree(program, Heap(program)))
        interp_a = Interpreter(lowered.program, heap_a)
        interp_a.globals["CHAR_WIDTH"] = 2
        interp_a.run_entry(root_a)
        heap_b = Heap(lowered.program)
        root_b = lower_tree(program, lowered, heap_b, _fig2_tree(program, Heap(program)))
        interp_b = Interpreter(lowered.program, heap_b)
        interp_b.globals["CHAR_WIDTH"] = 2
        interp_b.run_fused(fused, root_b)
        assert root_a.snapshot(lowered.program) == root_b.snapshot(lowered.program)
        assert interp_b.stats.node_visits < interp_a.stats.node_visits

    def test_grafter_fuses_more_than_treefuser(self):
        """The paper's central comparison: on the same workload, Grafter's
        type-specific fusion removes more node visits than the tagged-union
        baseline, whose branch-unioned dependences block some groups."""
        program = fig2_program()
        # Grafter
        fused_het = fuse_program(program)
        heap_g = Heap(program)
        root_g = _fig2_tree(program, heap_g)
        interp_g = Interpreter(program, heap_g)
        interp_g.globals["CHAR_WIDTH"] = 2
        interp_g.run_fused(fused_het, root_g)
        # TreeFuser
        lowered = lower_program(program)
        fused_low = fuse_program(lowered.program)
        heap_t = Heap(lowered.program)
        root_t = lower_tree(program, lowered, heap_t, _fig2_tree(program, Heap(program)))
        interp_t = Interpreter(lowered.program, heap_t)
        interp_t.globals["CHAR_WIDTH"] = 2
        interp_t.run_fused(fused_low, root_t)
        assert interp_g.stats.node_visits < interp_t.stats.node_visits

    def test_mutation_lowers_and_runs(self):
        source = """
        _tree_ class E {
            _child_ E* next;
            int kind = 0;
            _traversal_ virtual void rw() {}
        };
        _tree_ class C : public E {
            _traversal_ void rw() {
                this->next->rw();
                if (this->next.kind == 7) {
                    delete this->next;
                    this->next = new Z();
                }
            }
        };
        _tree_ class Z : public E { };
        int main() { E* root = ...; root->rw(); }
        """
        program = parse_program(source)
        lowered = lower_program(program)

        def build(p, heap):
            node = Node.new(p, heap, "Z")
            node = Node.new(p, heap, "C", kind=7, next=node)
            return Node.new(p, heap, "C", next=node)

        heap = Heap(lowered.program)
        root = lower_tree(program, lowered, heap, build(program, Heap(program)))
        interp = Interpreter(lowered.program, heap)
        interp.run_entry(root)
        # the marked node was replaced by a fresh TNode tagged Z
        replacement = root.get("E_next")
        assert replacement.get("tag") == lowered.tag_of("Z")


class TestRandomLoweredPrograms:
    @pytest.mark.parametrize("seed", range(15))
    def test_lowered_fused_equivalence(self, seed):
        rng = random.Random(seed)
        source = random_program_source(rng)
        program = parse_program(source, name=f"rand{seed}")
        lowered = lower_program(program)

        def build_het():
            heap = Heap(program)
            return heap, random_tree(
                program, heap, random.Random(seed + 77), max_depth=3
            )

        # lowered unfused
        _, het_root_a = build_het()
        heap_a = Heap(lowered.program)
        root_a = lower_tree(program, lowered, heap_a, het_root_a)
        interp_a = Interpreter(lowered.program, heap_a)
        interp_a.run_entry(root_a)
        # lowered fused
        _, het_root_b = build_het()
        heap_b = Heap(lowered.program)
        root_b = lower_tree(program, lowered, heap_b, het_root_b)
        interp_b = Interpreter(lowered.program, heap_b)
        fused = fuse_program(lowered.program)
        interp_b.run_fused(fused, root_b)
        assert root_a.snapshot(lowered.program) == root_b.snapshot(
            lowered.program
        ), f"seed {seed}\n{source}"
        assert interp_a.globals == interp_b.globals
