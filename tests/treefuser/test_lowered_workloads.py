"""TreeFuser lowering over the full case studies (regression coverage
for variant-local renaming: variants of one traversal share a flat scope
after lowering, so their locals must not collide)."""

from repro.fusion import fuse_program
from repro.runtime import Heap, Interpreter
from repro.treefuser import lower_program, lower_tree


class TestLoweredAst:
    """The AST passes declare same-named locals (`vid`, `val`, `v`) in
    several type variants — the collision case that motivated renaming."""

    def _lowered(self):
        from repro.workloads.astlang import ast_program
        from repro.workloads.astlang.programs import replicated_functions

        program = ast_program()
        lowered = lower_program(program)

        def build():
            src_heap = Heap(program)
            het = replicated_functions(program, src_heap, 3)
            heap = Heap(lowered.program)
            return heap, lower_tree(program, lowered, heap, het)

        return program, lowered, build

    def test_lowering_renames_colliding_locals(self):
        _, lowered, _ = self._lowered()
        desugar = lowered.program.tree_types["TNode"].methods["desugarDecr"]
        from repro.ir.stmts import LocalDef, walk_stmts

        names = [
            s.name for s in walk_stmts(desugar.body) if isinstance(s, LocalDef)
        ]
        assert len(names) == len(set(names)), "locals still collide"
        assert any("__v" in name for name in names)

    def test_lowered_unfused_runs_all_passes(self):
        program, lowered, build = self._lowered()
        heap, root = build()
        interp = Interpreter(lowered.program, heap)
        interp.run_entry(root)
        # desugaring happened: no nodes tagged Incr/Decr remain
        incr_tag = lowered.tag_of("IncrExpr")
        decr_tag = lowered.tag_of("DecrExpr")
        tags = [n.get("tag") for n in root.walk(lowered.program)]
        assert incr_tag not in tags and decr_tag not in tags

    def test_lowered_fused_matches_unfused(self):
        program, lowered, build = self._lowered()
        heap_a, root_a = build()
        interp_a = Interpreter(lowered.program, heap_a)
        interp_a.run_entry(root_a)
        fused = fuse_program(lowered.program)
        heap_b, root_b = build()
        interp_b = Interpreter(lowered.program, heap_b)
        interp_b.run_fused(fused, root_b)
        assert root_a.snapshot(lowered.program) == root_b.snapshot(
            lowered.program
        )
        assert interp_b.stats.node_visits < interp_a.stats.node_visits


class TestLoweredKdTree:
    def test_kdtree_eq1_lowers_and_fuses(self):
        from repro.workloads.kdtree import (
            EQ1_SCHEDULE,
            KD_DEFAULT_GLOBALS,
            build_balanced_tree,
            equation_program,
        )

        program = equation_program(EQ1_SCHEDULE, "tf-eq1")
        lowered = lower_program(program)

        def build():
            src_heap = Heap(program)
            het = build_balanced_tree(program, src_heap, depth=4)
            heap = Heap(lowered.program)
            return heap, lower_tree(program, lowered, heap, het)

        heap_a, root_a = build()
        interp_a = Interpreter(lowered.program, heap_a)
        interp_a.globals.update(KD_DEFAULT_GLOBALS)
        interp_a.run_entry(root_a)
        fused = fuse_program(lowered.program)
        heap_b, root_b = build()
        interp_b = Interpreter(lowered.program, heap_b)
        interp_b.globals.update(KD_DEFAULT_GLOBALS)
        interp_b.run_fused(fused, root_b)
        assert root_a.snapshot(lowered.program) == root_b.snapshot(
            lowered.program
        )


class TestLoweredFmm:
    def test_fmm_lowers_and_fuses(self):
        from repro.workloads.fmm import (
            FMM_DEFAULT_GLOBALS,
            build_fmm_tree,
            fmm_program,
            random_particles,
        )

        program = fmm_program()
        lowered = lower_program(program)
        particles = random_particles(64)

        def build():
            src_heap = Heap(program)
            het = build_fmm_tree(program, src_heap, particles)
            heap = Heap(lowered.program)
            return heap, lower_tree(program, lowered, heap, het)

        heap_a, root_a = build()
        interp_a = Interpreter(lowered.program, heap_a)
        interp_a.globals.update(FMM_DEFAULT_GLOBALS)
        interp_a.run_entry(root_a)
        fused = fuse_program(lowered.program)
        heap_b, root_b = build()
        interp_b = Interpreter(lowered.program, heap_b)
        interp_b.globals.update(FMM_DEFAULT_GLOBALS)
        interp_b.run_fused(fused, root_b)
        assert root_a.snapshot(lowered.program) == root_b.snapshot(
            lowered.program
        )
