"""Error-hierarchy tests: one catchable base, informative positions."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in (
            "FrontendError",
            "ValidationError",
            "AnalysisError",
            "FusionError",
            "RuntimeFailure",
            "WorkloadError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_frontend_error_formats_position(self):
        error = errors.FrontendError("bad token", line=3, column=7)
        assert "3:7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_frontend_error_without_position(self):
        error = errors.FrontendError("bad token")
        assert str(error) == "bad token"

    def test_catching_base_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.FusionError("nope")
        with pytest.raises(errors.ReproError):
            raise errors.FrontendError("nope", 1, 1)
