"""Render-tree case study tests: structure, oracle correctness, fusion
effectiveness, and TreeFuser comparison (paper §5.1)."""

import pytest

from repro.fusion import fuse_program
from repro.runtime import ExecStats, Heap, Interpreter
from repro.treefuser import lower_program, lower_tree
from repro.workloads.render import (
    build_document,
    doc1_spec,
    doc2_spec,
    doc3_spec,
    layout_oracle,
    render_program,
    replicated_pages_spec,
)
from repro.workloads.render.schema import DEFAULT_GLOBALS

PASSES = [
    "resolveFlexWidths",
    "resolveRelativeWidths",
    "setFontStyle",
    "computeHeights",
    "computePositions",
]


def run_unfused(spec):
    program = render_program()
    heap = Heap(program)
    doc = build_document(program, heap, spec)
    interp = Interpreter(program, heap)
    interp.globals.update(DEFAULT_GLOBALS)
    interp.run_entry(doc)
    return program, doc, interp


def run_fused(spec):
    program = render_program()
    fused = fuse_program(program)
    heap = Heap(program)
    doc = build_document(program, heap, spec)
    interp = Interpreter(program, heap)
    interp.globals.update(DEFAULT_GLOBALS)
    interp.run_fused(fused, doc)
    return program, doc, interp


class TestStructure:
    def test_seventeen_tree_types(self):
        program = render_program()
        assert len(program.tree_types) == 17

    def test_five_passes_in_entry(self):
        program = render_program()
        assert [c.method_name for c in program.entry] == PASSES

    def test_many_simple_functions(self):
        """Paper §5.1: the Grafter version spreads the passes over ~55
        small per-type functions (vs one monolith per traversal in
        TreeFuser)."""
        program = render_program()
        total = sum(1 for _ in program.all_methods())
        non_empty = sum(1 for m in program.all_methods() if m.body)
        assert total >= 55
        assert non_empty >= 45

    def test_document_sizes(self):
        program = render_program()
        heap = Heap(program)
        doc = build_document(program, heap, replicated_pages_spec(8))
        per_page = doc.count_nodes(program) / 8
        assert 15 <= per_page <= 50


class TestOracle:
    @pytest.mark.parametrize("spec_fn", [
        lambda: replicated_pages_spec(3),
        lambda: doc1_spec(num_pages=6),
        lambda: doc2_spec(rows=12),
        lambda: doc3_spec(num_pages=6),
    ])
    def test_unfused_matches_oracle(self, spec_fn):
        program, doc, _ = run_unfused(spec_fn())
        oracle = layout_oracle(program, doc)
        checked = 0
        for node in doc.walk(program):
            for field, expected in oracle.expected_for(node).items():
                assert node.get(field) == expected, (
                    f"{node.type_name}.{field}: got {node.get(field)}, "
                    f"want {expected}"
                )
                checked += 1
        assert checked > 50

    def test_fused_matches_oracle(self):
        program, doc, _ = run_fused(replicated_pages_spec(3))
        oracle = layout_oracle(program, doc)
        for node in doc.walk(program):
            for field, expected in oracle.expected_for(node).items():
                assert node.get(field) == expected

    def test_positions_are_monotonic_down_the_page(self):
        program, doc, _ = run_unfused(replicated_pages_spec(2))
        pages = [n for n in doc.walk(program) if n.type_name == "Page"]
        assert pages[0].get("PosY") < pages[1].get("PosY")


class TestFusionEffectiveness:
    def test_visit_reduction_matches_paper_band(self):
        """Fig. 9a: Grafter cuts render-tree node visits by ~60%."""
        spec = replicated_pages_spec(6)
        _, _, unfused = run_unfused(spec)
        _, _, fused = run_fused(spec)
        ratio = fused.stats.node_visits / unfused.stats.node_visits
        assert 0.2 <= ratio <= 0.5

    def test_no_instruction_overhead(self):
        """Fig. 9a: Grafter shows virtually no instruction overhead."""
        spec = replicated_pages_spec(6)
        _, _, unfused = run_unfused(spec)
        _, _, fused = run_fused(spec)
        ratio = fused.stats.instructions / unfused.stats.instructions
        assert ratio <= 1.05

    def test_fused_equals_unfused_state(self):
        spec = doc3_spec(num_pages=4)
        program, doc_a, _ = run_unfused(spec)
        _, doc_b, _ = run_fused(spec)
        assert doc_a.snapshot(program) == doc_b.snapshot(program)

    def test_cache_misses_drop_for_large_documents(self):
        """Fig. 9a: fusion cuts cache misses once the tree exceeds the
        cache (scaled geometry keeps the experiment fast)."""
        from repro.cachesim import paper_hierarchy

        spec = replicated_pages_spec(48)
        program = render_program()
        heap = Heap(program)
        doc = build_document(program, heap, spec)
        stats = ExecStats(cache=paper_hierarchy(scale=64))
        interp = Interpreter(program, heap, stats)
        interp.globals.update(DEFAULT_GLOBALS)
        interp.run_entry(doc)
        unfused_l2 = stats.miss_counts()["L2"]

        fused = fuse_program(program)
        heap2 = Heap(program)
        doc2 = build_document(program, heap2, spec)
        stats2 = ExecStats(cache=paper_hierarchy(scale=64))
        interp2 = Interpreter(program, heap2, stats2)
        interp2.globals.update(DEFAULT_GLOBALS)
        interp2.run_fused(fused, doc2)
        fused_l2 = stats2.miss_counts()["L2"]
        assert fused_l2 < unfused_l2 * 0.7


class TestTreeFuserComparison:
    def test_baselines_do_same_work(self):
        """Paper §5.1: both baselines have the same absolute node visits."""
        spec = replicated_pages_spec(3)
        program, _, het = run_unfused(spec)
        lowered = lower_program(program)
        heap = Heap(lowered.program)
        src_heap = Heap(program)
        twin = lower_tree(
            program, lowered, heap, build_document(program, src_heap, spec)
        )
        interp = Interpreter(lowered.program, heap)
        interp.globals.update(DEFAULT_GLOBALS)
        interp.run_entry(twin)
        assert interp.stats.node_visits == het.stats.node_visits

    def test_treefuser_baseline_substantially_slower(self):
        """Paper §5.1: Grafter's baseline is already substantially faster
        than TreeFuser's (tagged-union conditionals at every node)."""
        spec = replicated_pages_spec(3)
        program, _, het = run_unfused(spec)
        lowered = lower_program(program)
        heap = Heap(lowered.program)
        twin = lower_tree(
            program, lowered, heap, build_document(program, Heap(program), spec)
        )
        interp = Interpreter(lowered.program, heap)
        interp.globals.update(DEFAULT_GLOBALS)
        interp.run_entry(twin)
        assert interp.stats.instructions > 1.5 * het.stats.instructions

    def test_treefuser_fusion_has_instruction_overhead(self):
        """Fig. 9b: TreeFuser's fused version pays 30-40% more
        instructions than its own baseline; Grafter's does not."""
        spec = replicated_pages_spec(3)
        program = render_program()
        lowered = lower_program(program)
        fused_low = fuse_program(lowered.program)

        def run(fused_mode):
            heap = Heap(lowered.program)
            twin = lower_tree(
                program, lowered, heap,
                build_document(program, Heap(program), spec),
            )
            interp = Interpreter(lowered.program, heap)
            interp.globals.update(DEFAULT_GLOBALS)
            if fused_mode:
                interp.run_fused(fused_low, twin)
            else:
                interp.run_entry(twin)
            return interp.stats

        baseline = run(False)
        fused = run(True)
        overhead = fused.instructions / baseline.instructions
        assert 1.1 <= overhead <= 1.9
        assert fused.node_visits < baseline.node_visits
