"""kd-tree case-study tests (paper §5.3): traversal algebra against the
piecewise oracle, splitting, truncation, and fusion shape."""

import pytest

from repro.fusion import fuse_program
from repro.runtime import Heap, Interpreter
from repro.workloads.kdtree import (
    EQ1_SCHEDULE,
    EQ2_SCHEDULE,
    EQ3_SCHEDULE,
    KD_DEFAULT_GLOBALS,
    PiecewiseOracle,
    build_balanced_tree,
    equation_program,
    leaf_segments,
)

_SCHEDULES = {
    "eq1": EQ1_SCHEDULE,
    "eq2": EQ2_SCHEDULE,
    "eq3": EQ3_SCHEDULE,
}


def run_schedule(name, depth=5, fused=False):
    schedule = _SCHEDULES[name]
    program = equation_program(schedule, name)
    heap = Heap(program)
    function = build_balanced_tree(program, heap, depth=depth)
    before = leaf_segments(program, function)
    interp = Interpreter(program, heap)
    interp.globals.update(KD_DEFAULT_GLOBALS)
    if fused:
        interp.run_fused(fuse_program(program), function)
    else:
        interp.run_entry(function)
    return program, function, interp, before


def segments_close(got, want, tol=1e-6):
    if len(got) != len(want):
        return False
    for (g_lo, g_hi, g_c), (w_lo, w_hi, w_c) in zip(got, want):
        if abs(g_lo - w_lo) > 1e-9 or abs(g_hi - w_hi) > 1e-9:
            return False
        if any(abs(a - b) > tol for a, b in zip(g_c, w_c)):
            return False
    return True


class TestTraversalAlgebra:
    @pytest.mark.parametrize("name", ["eq1", "eq2", "eq3"])
    def test_unfused_matches_oracle_segments(self, name):
        program, function, _, before = run_schedule(name)
        oracle = PiecewiseOracle(before)
        oracle.apply_schedule(_SCHEDULES[name])
        assert segments_close(leaf_segments(program, function), oracle.segments)

    def test_integral_matches_oracle(self):
        program, function, _, before = run_schedule("eq3")
        oracle = PiecewiseOracle(before)
        results = oracle.apply_schedule(EQ3_SCHEDULE)
        scale = max(1.0, abs(results["integral"]))
        assert abs(function.get("Integral") - results["integral"]) < 1e-6 * scale

    def test_projection_matches_oracle(self):
        program, function, _, before = run_schedule("eq2")
        oracle = PiecewiseOracle(before)
        results = oracle.apply_schedule(EQ2_SCHEDULE)
        assert abs(function.get("Value") - results["value"]) < 1e-9

    def test_split_creates_boundary_aligned_leaves(self):
        program, function, _, before = run_schedule("eq3")
        # eq3 splits at x=512 over [0,1024]: with a power-of-two grid the
        # boundary is already aligned, so leaf count is unchanged; check
        # instead with an unaligned range on a fresh program
        from repro.workloads.kdtree.equations import equation_program as eq

        schedule = [("splitForRange", (100.0, 900.0))]
        program2 = eq(schedule, "splitonly")
        heap = Heap(program2)
        f2 = build_balanced_tree(program2, heap, depth=3)
        n_before = len(leaf_segments(program2, f2))
        interp = Interpreter(program2, heap)
        interp.globals.update(KD_DEFAULT_GLOBALS)
        interp.run_entry(f2)
        segments = leaf_segments(program2, f2)
        assert len(segments) > n_before
        # segments tile the domain exactly
        for (a_lo, a_hi, _), (b_lo, b_hi, _) in zip(segments, segments[1:]):
            assert abs(a_hi - b_lo) < 1e-9

    def test_projection_truncates_subtrees(self):
        depth = 7
        _, _, interp, _ = run_schedule("eq2", depth=depth)
        # project() returns immediately on the off-path sibling at every
        # level: one truncation per level of the tree
        assert interp.stats.truncations >= depth - 1
        # ...so the projection visits a root-to-leaf path, not the tree:
        # the five differentiate passes dominate the visit count
        full_traversal_visits = 5 * (2 ** (depth + 1))
        assert interp.stats.node_visits < full_traversal_visits * 1.2


class TestFusion:
    @pytest.mark.parametrize("name", ["eq1", "eq2", "eq3"])
    def test_fused_equals_unfused(self, name):
        program, f_unfused, _, _ = run_schedule(name)
        _, f_fused, _, _ = run_schedule(name, fused=True)
        assert f_unfused.snapshot(program) == f_fused.snapshot(program)

    def test_eq1_visit_reduction_matches_paper(self):
        """Fig. 12 / Table 6: eq1's fused traversals visit ~0.17x the
        nodes (we allow 0.15-0.35 at our scales)."""
        _, _, unfused, _ = run_schedule("eq1", depth=7)
        _, _, fused, _ = run_schedule("eq1", depth=7, fused=True)
        ratio = fused.stats.node_visits / unfused.stats.node_visits
        assert 0.1 <= ratio <= 0.35

    def test_all_equations_reduce_visits(self):
        """Table 6: every equation's schedule fuses substantially."""
        for name in ("eq1", "eq2", "eq3"):
            _, _, unfused, _ = run_schedule(name, depth=6)
            _, _, fused, _ = run_schedule(name, depth=6, fused=True)
            ratio = fused.stats.node_visits / unfused.stats.node_visits
            assert ratio < 0.6, name

    def test_different_schedules_produce_different_fusions(self):
        """§5.3's motivation: each equation needs its own fusion — the
        synthesized unit sets differ."""
        units = {}
        for name in ("eq1", "eq2", "eq3"):
            program = equation_program(_SCHEDULES[name], name)
            units[name] = set(fuse_program(program).units)
        assert units["eq1"] != units["eq2"]
        assert units["eq2"] != units["eq3"]
