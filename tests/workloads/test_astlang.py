"""AST case-study tests (paper §5.2): pass semantics, meaning
preservation, fusion behaviour with dynamic truncation."""

import pytest

from repro.fusion import fuse_program
from repro.runtime import Heap, Interpreter
from repro.workloads.astlang import (
    AstBuilder,
    ast_program,
    check_desugared,
    check_folded,
    check_pruned,
    evaluate_program,
    prog1_spec,
    prog2_spec,
    prog3_spec,
    replicated_functions,
)

_FUSED_CACHE = {}


def fused_ast_program():
    if "fused" not in _FUSED_CACHE:
        _FUSED_CACHE["fused"] = fuse_program(ast_program())
    return _FUSED_CACHE["fused"]


def run_unfused(build):
    program = ast_program()
    heap = Heap(program)
    root = build(program, heap)
    before = evaluate_program(program, root)
    interp = Interpreter(program, heap)
    interp.run_entry(root)
    return program, root, interp, before


def run_fused(build):
    program = ast_program()
    fused = fused_ast_program()
    heap = Heap(program)
    root = build(program, heap)
    before = evaluate_program(program, root)
    interp = Interpreter(program, heap)
    interp.run_fused(fused, root)
    return program, root, interp, before


class TestStructure:
    def test_twenty_tree_types(self):
        assert len(ast_program().tree_types) == 20

    def test_six_traversals(self):
        program = ast_program()
        names = {m.name for m in program.all_methods()}
        assert names == {
            "desugarIncr", "desugarDecr", "propagateConstants",
            "replaceVarRefs", "foldConstants", "removeUnusedBranches",
        }

    def test_entry_runs_five_passes(self):
        # replaceVarRefs is the sixth traversal, launched internally by
        # propagateConstants (the paper's two-traversal constant prop)
        program = ast_program()
        assert len(program.entry) == 5


class TestPassSemantics:
    def test_desugar_removes_all_sugar(self):
        program, root, _, _ = run_unfused(
            lambda p, h: replicated_functions(p, h, 4)
        )
        assert check_desugared(program, root)

    def test_fold_leaves_no_constant_operators(self):
        program, root, _, _ = run_unfused(
            lambda p, h: replicated_functions(p, h, 4)
        )
        assert check_folded(program, root)

    def test_branches_pruned(self):
        program, root, _, _ = run_unfused(
            lambda p, h: replicated_functions(p, h, 4)
        )
        assert check_pruned(program, root)

    @pytest.mark.parametrize("build", [
        lambda p, h: replicated_functions(p, h, 5, seed=1),
        lambda p, h: prog1_spec(p, h, num_functions=10),
        lambda p, h: prog2_spec(p, h, num_stmts=60),
        lambda p, h: prog3_spec(p, h, num_functions=4, stmts_per_function=20),
    ])
    def test_optimizations_preserve_meaning(self, build):
        program, root, _, before = run_unfused(build)
        after = evaluate_program(program, root)
        assert before == after

    def test_constant_propagation_enables_folding(self):
        """x = 3; y = x + 4 must end as y = 7 (a literal)."""
        program = ast_program()
        heap = Heap(program)
        builder = AstBuilder(program, heap)
        root = builder.program_node([
            builder.function([
                builder.assign(0, builder.const(3)),
                builder.assign(1, builder.add(builder.var(0), builder.const(4))),
            ])
        ])
        interp = Interpreter(program, heap)
        interp.run_entry(root)
        fn = root.get("Functions").get("Fn")
        second = fn.get("Body").get("Next").get("S")
        rhs = second.get("Rhs")
        assert rhs.type_name == "ConstExpr"
        assert rhs.get("value") == 7

    def test_replace_truncates_at_reassignment(self):
        """x = 3; y = x; x = y; z = x — the first propagation must stop
        at the reassignment of x, so z's x is NOT replaced by 3."""
        program = ast_program()
        heap = Heap(program)
        builder = AstBuilder(program, heap)
        root = builder.program_node([
            builder.function([
                builder.assign(0, builder.const(3)),
                builder.assign(1, builder.var(0)),
                builder.assign(0, builder.var(1)),
                builder.assign(2, builder.var(0)),
            ])
        ])
        before = evaluate_program(program, root)
        interp = Interpreter(program, heap)
        interp.run_entry(root)
        assert evaluate_program(program, root) == before
        assert interp.stats.truncations > 0


class TestFusion:
    def test_fused_equals_unfused(self):
        build = lambda p, h: replicated_functions(p, h, 5, seed=2)
        program, root_a, _, _ = run_unfused(build)
        _, root_b, _, _ = run_fused(build)
        assert root_a.snapshot(program) == root_b.snapshot(program)

    def test_fused_meaning_preserved(self):
        build = lambda p, h: prog3_spec(p, h, num_functions=3,
                                        stmts_per_function=15)
        program, root, _, before = run_fused(build)
        assert evaluate_program(program, root) == before

    def test_visit_reduction_in_paper_band(self):
        """Table 4 reports 8-34% fewer node visits for the AST passes;
        mutation blocks expression-level fusion, so reductions are far
        smaller than the render tree's."""
        build = lambda p, h: replicated_functions(p, h, 8)
        _, _, unfused, _ = run_unfused(build)
        _, _, fused, _ = run_fused(build)
        ratio = fused.stats.node_visits / unfused.stats.node_visits
        assert 0.4 <= ratio <= 0.95

    def test_instruction_overhead_small(self):
        """Fig. 11: fused AST traversals pay a small instruction overhead
        (the paper: 4-15%) from dynamically-truncated traversals' flags
        that keep being passed and checked."""
        build = lambda p, h: replicated_functions(p, h, 8)
        _, _, unfused, _ = run_unfused(build)
        _, _, fused, _ = run_fused(build)
        ratio = fused.stats.instructions / unfused.stats.instructions
        assert 0.9 <= ratio <= 1.2

    def test_truncation_heavy_input_pays_more_overhead(self):
        """Prog2-style inputs (one large statement list, many sentinel
        replaceVarRefs launches) pay the most flag overhead — the
        paper's explanation for the AST overhead. Still bounded."""
        build = lambda p, h: prog2_spec(p, h, num_stmts=80)
        _, _, unfused, _ = run_unfused(build)
        _, _, fused, _ = run_fused(build)
        ratio = fused.stats.instructions / unfused.stats.instructions
        assert 1.0 <= ratio <= 1.45

    def test_prog_configs_have_distinct_shapes(self):
        """Table 4: Prog1 (many small fns) fuses more than Prog2 (one
        large fn, where in-function statement lists dominate)."""
        program = ast_program()

        def ratio_for(build):
            _, _, unfused, _ = run_unfused(build)
            _, _, fused, _ = run_fused(build)
            return fused.stats.node_visits / unfused.stats.node_visits

        r1 = ratio_for(lambda p, h: prog1_spec(p, h, num_functions=20))
        r2 = ratio_for(lambda p, h: prog2_spec(p, h, num_stmts=120))
        assert r1 < 1.0 and r2 < 1.0
