"""Per-operation kd-tree tests: each Table 5 traversal in isolation
against closed-form expectations."""

import pytest

from repro.runtime import Heap, Interpreter
from repro.workloads.kdtree import (
    KD_DEFAULT_GLOBALS,
    build_balanced_tree,
    leaf_segments,
)
from repro.workloads.kdtree.equations import equation_program


def run_ops(schedule, depth=3, name=None):
    program = equation_program(schedule, name or f"op-{schedule[0][0]}")
    heap = Heap(program)
    function = build_balanced_tree(program, heap, depth=depth)
    before = leaf_segments(program, function)
    interp = Interpreter(program, heap)
    interp.globals.update(KD_DEFAULT_GLOBALS)
    interp.run_entry(function)
    return program, function, before


class TestIndividualOperations:
    def test_scale_multiplies_all_coefficients(self):
        program, function, before = run_ops([("scale", (3.0,))])
        for (_, _, got), (_, _, orig) in zip(
            leaf_segments(program, function), before
        ):
            assert got == pytest.approx(tuple(3.0 * c for c in orig))

    def test_add_shifts_constant_term_only(self):
        program, function, before = run_ops([("addC", (2.5,))])
        for (_, _, got), (_, _, orig) in zip(
            leaf_segments(program, function), before
        ):
            assert got[0] == pytest.approx(orig[0] + 2.5)
            assert got[1:] == pytest.approx(orig[1:])

    def test_differentiate_is_polynomial_derivative(self):
        program, function, before = run_ops([("differentiate", ())])
        for (_, _, got), (_, _, orig) in zip(
            leaf_segments(program, function), before
        ):
            assert got == pytest.approx(
                (orig[1], 2 * orig[2], 3 * orig[3], 0.0)
            )

    def test_square_matches_truncated_product(self):
        program, function, before = run_ops([("square", ())])
        for (_, _, got), (_, _, c) in zip(
            leaf_segments(program, function), before
        ):
            assert got == pytest.approx(
                (
                    c[0] * c[0],
                    2 * c[0] * c[1],
                    2 * c[0] * c[2] + c[1] * c[1],
                    2 * c[0] * c[3] + 2 * c[1] * c[2],
                )
            )

    def test_derivative_of_integral_consistency(self):
        """d/dx then integrate over the full domain telescopes: the
        integral of f' over [lo,hi] equals f(hi) - f(lo) per segment."""
        program, function, before = run_ops(
            [("differentiate", ()), ("integrate", (0.0, 1024.0))]
        )
        expected = 0.0
        for lo, hi, c in before:
            def poly(x):
                return c[0] + x * (c[1] + x * (c[2] + x * c[3]))

            expected += poly(hi) - poly(lo)
        assert function.get("Integral") == pytest.approx(expected, rel=1e-9)

    def test_add_x_range_outside_leaves_untouched(self):
        program, function, before = run_ops(
            [
                ("splitForRange", (0.0, 512.0)),
                ("addXRange", (0.0, 512.0)),
            ],
            name="addx-partial",
        )
        for lo, hi, got in leaf_segments(program, function):
            matching = next(
                (c for (olo, ohi, c) in before if olo <= lo and ohi >= hi),
                None,
            )
            assert matching is not None
            if hi <= 512.0:
                assert got[1] == pytest.approx(matching[1] + 1.0)
            else:
                assert got[1] == pytest.approx(matching[1])

    def test_projection_agrees_with_direct_evaluation(self):
        program, function, before = run_ops(
            [("project", (700.0,))], name="proj-700"
        )
        lo, hi, c = next(
            (s for s in before if s[0] <= 700.0 <= s[1])
        )
        expected = c[0] + 700.0 * (c[1] + 700.0 * (c[2] + 700.0 * c[3]))
        assert function.get("Value") == pytest.approx(expected)

    def test_mult_x_range_shifts_coefficients(self):
        program, function, before = run_ops(
            [("multXRange", (0.0, 1024.0))], name="multx-full"
        )
        for (_, _, got), (_, _, c) in zip(
            leaf_segments(program, function), before
        ):
            assert got == pytest.approx((0.0, c[0], c[1], c[2]))
