"""FMM case-study tests (paper §5.4): kernel recurrences against the
oracle and the "two traversals fully fuse" structure."""

from repro.fusion import fuse_program
from repro.fusion.fused_ir import GroupCall
from repro.runtime import Heap, Interpreter
from repro.workloads.fmm import (
    FMM_DEFAULT_GLOBALS,
    build_fmm_tree,
    fmm_oracle,
    fmm_program,
    random_particles,
)


def run(count=256, fused=False, seed=31):
    program = fmm_program()
    heap = Heap(program)
    root = build_fmm_tree(program, heap, random_particles(count, seed))
    interp = Interpreter(program, heap)
    interp.globals.update(FMM_DEFAULT_GLOBALS)
    if fused:
        interp.run_fused(fuse_program(program), root)
    else:
        interp.run_entry(root)
    return program, root, interp


class TestKernel:
    def test_multipoles_locals_potentials_match_oracle(self):
        program, root, _ = run()
        expected = fmm_oracle(program, root)
        for node in root.walk(program):
            for field, want in expected[id(node)].items():
                assert abs(node.get(field) - want) < 1e-9

    def test_total_mass_conserved(self):
        program, root, _ = run(count=300, seed=5)
        particles = random_particles(300, 5)
        assert abs(root.get("Multipole") - sum(m for _, m in particles)) < 1e-9

    def test_leaf_capacity_respected(self):
        program, root, _ = run(count=100)
        leaves = [n for n in root.walk(program) if n.type_name == "FmmLeaf"]
        # every particle mass is in some leaf slot
        total = sum(
            leaf.get(p) for leaf in leaves for p in ("P0", "P1", "P2", "P3")
        )
        particles = random_particles(100, 31)
        assert abs(total - sum(m for _, m in particles)) < 1e-9


class TestFusion:
    def test_fused_equals_unfused(self):
        program, root_a, _ = run(count=200)
        _, root_b, _ = run(count=200, fused=True)
        assert root_a.snapshot(program) == root_b.snapshot(program)

    def test_downward_passes_fully_fuse(self):
        """Paper: 'Grafter was able to fully fuse the two passes' — the
        locals+potentials unit recurses into itself on both children."""
        fused = fuse_program(fmm_program())
        key = ("FmmCell::computeLocals", "FmmCell::evaluatePotentials")
        assert key in fused.units
        unit = fused.units[key]
        groups = [i for i in unit.body if isinstance(i, GroupCall)]
        assert len(groups) == 2  # Left and Right
        for group in groups:
            assert len(group.calls) == 2  # both passes together

    def test_upward_pass_cannot_fuse_with_downward(self):
        """computeLocals at a node needs the multipole that
        computeMultipoles finishes *after* recursing — a genuine
        upward/downward conflict, so the passes stay separate."""
        fused = fuse_program(fmm_program())
        top = fused.entry_groups[0].dispatch["FmmCell"]
        groups = [i for i in top.body if isinstance(i, GroupCall)]
        for group in groups:
            names = {c.method_name for c in group.calls}
            assert not (
                "computeMultipoles" in names and "computeLocals" in names
            )

    def test_visit_reduction_one_of_three_passes(self):
        program, _, unfused = run(count=400)
        _, _, fused = run(count=400, fused=True)
        ratio = fused.stats.node_visits / unfused.stats.node_visits
        assert 0.6 <= ratio <= 0.75  # 3 passes -> 2

    def test_modest_instruction_cost(self):
        """Fig. 13: FMM gains are modest (heavy per-node work, light
        traversal overhead)."""
        _, _, unfused = run(count=400)
        _, _, fused = run(count=400, fused=True)
        ratio = fused.stats.instructions / unfused.stats.instructions
        assert 0.85 <= ratio <= 1.15
