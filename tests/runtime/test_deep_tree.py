"""Degenerate deep trees must not hit the interpreter recursion limit.

``Node.walk`` and ``Node.snapshot`` used to recurse per node, so a
chain deeper than ``sys.getrecursionlimit()`` (a worst-case kd-tree, a
long document list) blew up before any traversal ran. Both are
explicit-stack iterations now; these tests pin that on a chain several
times deeper than the default limit.
"""

import sys

import pytest

from repro.runtime.heap import Heap
from repro.runtime.node import Node
from repro.workloads.render import render_workload

DEPTH = 4000  # several times the default recursion limit


def _chain_field(program):
    """A concrete type that can hold itself as a child, plus the child
    field name — the building block of a degenerate chain."""
    for type_name in sorted(program.tree_types):
        if program.tree_types[type_name].abstract:
            continue
        for name, field in program.fields_of(type_name).items():
            if field.is_child and type_name in program.concrete_subtypes(
                field.type_name
            ):
                return type_name, name
    raise AssertionError("schema has no self-chaining type")


@pytest.fixture(scope="module")
def deep_chain():
    program = render_workload().source
    heap = Heap(program)
    type_name, child = _chain_field(program)
    root = Node.new(program, heap, type_name)
    tip = root
    for _ in range(DEPTH - 1):
        nxt = Node.new(program, heap, type_name)
        tip.set(child, nxt)
        tip = nxt
    return program, root, child


class TestDeepChain:
    def test_depth_exceeds_recursion_limit(self):
        assert DEPTH > sys.getrecursionlimit()

    def test_walk_reaches_every_node(self, deep_chain):
        program, root, _ = deep_chain
        assert root.count_nodes(program) == DEPTH

    def test_snapshot_reaches_the_bottom(self, deep_chain):
        program, root, child = deep_chain
        snapshot = root.snapshot(program)
        depth = 0
        cursor = snapshot
        while cursor is not None:
            depth += 1
            cursor = cursor[child]
        assert depth == DEPTH

    def test_snapshot_matches_field_values(self, deep_chain):
        program, root, child = deep_chain
        snapshot = root.snapshot(program)
        assert snapshot["__type__"] == root.type_name
        for name, field in program.fields_of(root.type_name).items():
            if field.is_child or name == child:
                continue
            assert snapshot[name] is not None or root.fields[name] is None
