"""Direct tests of fused-execution semantics: active flags, per-frame
truncation isolation, guarded slots, argument passing for truncated
members (the paper's §3.4 runtime behaviour)."""

from repro.frontend import parse_program
from repro.fusion import fuse_program
from repro.runtime import Heap, Interpreter, Node

TRUNCATING = """
_tree_ class N {
    _child_ N* kid;
    int stopA = 0;
    int sawA = 0;
    int sawB = 0;
    _traversal_ virtual void passA(int d) {}
    _traversal_ virtual void passB(int d) {}
};
_tree_ class I : public N {
    _traversal_ void passA(int d) {
        if (this->stopA == 1) return;
        this->sawA = d;
        this->kid->passA(d + 1);
    }
    _traversal_ void passB(int d) {
        this->sawB = d;
        this->kid->passB(d + 10);
    }
};
_tree_ class L : public N { };
int main() { N* root = ...; root->passA(1); root->passB(1); }
"""


def _chain(program, heap, stops):
    node = Node.new(program, heap, "L")
    for stop in reversed(stops):
        node = Node.new(program, heap, "I", kid=node, stopA=stop)
    return node


def _run_fused(stops):
    program = parse_program(TRUNCATING)
    fused = fuse_program(program)
    heap = Heap(program)
    root = _chain(program, heap, stops)
    interp = Interpreter(program, heap)
    interp.run_fused(fused, root)
    return program, root, interp


class TestActiveFlags:
    def test_truncated_member_stops_while_other_continues(self):
        program, root, _ = _run_fused([0, 1, 0, 0])
        nodes = [n for n in root.walk(program) if n.type_name == "I"]
        # passA truncates at node 1 (its own statements stop there)...
        assert [n.get("sawA") for n in nodes] == [1, 0, 0, 0]
        # ...but passB keeps descending through the whole chain
        assert [n.get("sawB") for n in nodes] == [1, 11, 21, 31]

    def test_truncation_is_per_frame(self):
        # truncation at depth 0 still runs passA nowhere but passB fully
        program, root, interp = _run_fused([1, 0])
        nodes = [n for n in root.walk(program) if n.type_name == "I"]
        assert [n.get("sawA") for n in nodes] == [0, 0]
        assert [n.get("sawB") for n in nodes] == [1, 11]
        assert interp.stats.truncations == 1

    def test_all_flags_cleared_short_circuits(self):
        """Once every member truncates, the fused frame stops early; the
        subtree below is never visited."""
        source = TRUNCATING.replace("this->sawB = d;",
                                    "if (this->stopA == 1) return;\n"
                                    "        this->sawB = d;")
        program = parse_program(source)
        fused = fuse_program(program)
        heap = Heap(program)
        root = _chain(program, heap, [0, 1, 0, 0, 0])
        interp = Interpreter(program, heap)
        interp.run_fused(fused, root)
        nodes = [n for n in root.walk(program) if n.type_name == "I"]
        # both passes truncate at node 1; nodes 2+ never visited
        assert [n.get("sawA") for n in nodes] == [1, 0, 0, 0, 0]
        assert [n.get("sawB") for n in nodes] == [1, 0, 0, 0, 0]
        # visits: node0 + node1 (where both truncate); not 5
        assert interp.stats.node_visits <= 3

    def test_arguments_still_passed_after_truncation(self):
        """Paper §5.2: parameters of truncated traversals keep being
        passed — the fused call still carries passA's argument slot, and
        the instruction cost model charges for it."""
        program = parse_program(TRUNCATING)
        fused = fuse_program(program)
        unit = fused.units[("I::passA", "I::passB")]
        from repro.fusion.fused_ir import GroupCall

        group = next(i for i in unit.body if isinstance(i, GroupCall))
        assert len(group.calls) == 2
        assert all(len(c.args) == 1 for c in group.calls)


class TestVisitAccounting:
    def test_fused_visit_counts_once_per_node(self):
        program = parse_program(TRUNCATING)
        fused = fuse_program(program)
        heap = Heap(program)
        root = _chain(program, heap, [0, 0, 0])
        interp = Interpreter(program, heap)
        interp.run_fused(fused, root)
        # 3 I nodes + 1 L node, each visited once by the fused traversal
        assert interp.stats.node_visits == 4

    def test_unfused_visits_twice_per_node(self):
        program = parse_program(TRUNCATING)
        heap = Heap(program)
        root = _chain(program, heap, [0, 0, 0])
        interp = Interpreter(program, heap)
        interp.run_entry(root)
        assert interp.stats.node_visits == 8
