"""Interpreter semantics tests (original, unfused execution)."""

import pytest

from repro.errors import RuntimeFailure
from repro.frontend import parse_program
from repro.runtime import ExecStats, Heap, Interpreter, Node
from repro.runtime.values import ObjectValue

from tests.fixtures import fig2_program


def _run(source, build_tree, pure_impls=None, globals_init=None):
    program = parse_program(source, pure_impls=pure_impls or {})
    heap = Heap(program)
    root = build_tree(program, heap)
    interp = Interpreter(program, heap)
    for name, value in (globals_init or {}).items():
        interp.globals[name] = value
    interp.run_entry(root)
    return program, root, interp


class TestArithmetic:
    SOURCE = """
    _tree_ class N {
        int a = 0; int b = 0; int q = 0; int r = 0; int neg = 0;
        _traversal_ void go() {
            this->a = 7; this->b = -2;
            this->q = this->a / this->b;
            this->r = this->a % this->b;
            this->neg = -this->a / 2;
        }
    };
    int main() { N* root = ...; root->go(); }
    """

    def test_cxx_trunc_division(self):
        _, root, _ = _run(self.SOURCE, lambda p, h: Node.new(p, h, "N"))
        assert root.get("q") == -3  # trunc toward zero
        assert root.get("r") == 1  # sign of dividend
        assert root.get("neg") == -3

    def test_division_by_zero_raises(self):
        source = """
        _tree_ class N { int a = 0;
            _traversal_ void go() { this->a = 1 / this->a; } };
        int main() { N* root = ...; root->go(); }
        """
        with pytest.raises(RuntimeFailure, match="division by zero"):
            _run(source, lambda p, h: Node.new(p, h, "N"))


class TestControlFlowAndTruncation:
    SOURCE = """
    _tree_ class N {
        _child_ N* kid;
        int depth = 0;
        int visited = 0;
        int limit = 0;
        _traversal_ virtual void go(int d) {}
    };
    _tree_ class Inner : public N {
        _traversal_ void go(int d) {
            if (d >= this->limit) return;
            this->visited = 1;
            this->depth = d;
            this->kid->go(d + 1);
        }
    };
    _tree_ class Stop : public N { };
    int main() { N* root = ...; root->go(0); }
    """

    @staticmethod
    def _chain(program, heap, length, limit):
        node = Node.new(program, heap, "Stop")
        for _ in range(length):
            node = Node.new(program, heap, "Inner", kid=node, limit=limit)
        return node

    def test_truncation_stops_recursion(self):
        program, root, interp = _run(
            self.SOURCE, lambda p, h: self._chain(p, h, 10, 3)
        )
        visited = [n.get("visited") for n in root.walk(program)
                   if n.type_name == "Inner"]
        assert visited == [1, 1, 1] + [0] * 7
        assert interp.stats.truncations == 1

    def test_depth_parameter_flows(self):
        program, root, _ = _run(
            self.SOURCE, lambda p, h: self._chain(p, h, 5, 100)
        )
        depths = [n.get("depth") for n in root.walk(program)
                  if n.type_name == "Inner"]
        assert depths == [0, 1, 2, 3, 4]

    def test_node_visit_count(self):
        program, root, interp = _run(
            self.SOURCE, lambda p, h: self._chain(p, h, 5, 100)
        )
        # 5 Inner visits + the final call on Stop (inherited no-op)
        assert interp.stats.node_visits == 6


class TestMutation:
    SOURCE = """
    _tree_ class E {
        _child_ E* next;
        int kind = 0;
        int payload = 0;
        _traversal_ virtual void rewrite() {}
    };
    _tree_ class Cons : public E {
        _traversal_ void rewrite() {
            this->next->rewrite();
            if (this->next->kind == 7) {
                delete this->next;
                this->next = new Nil();
                this->next->payload = 42;
            }
        }
    };
    _tree_ class Nil : public E { };
    int main() { E* root = ...; root->rewrite(); }
    """

    def test_delete_and_new_rewrites_topology(self):
        def build(program, heap):
            tail = Node.new(program, heap, "Nil")
            marked = Node.new(program, heap, "Cons", kind=7, next=tail)
            return Node.new(program, heap, "Cons", next=marked)

        program, root, _ = _run(self.SOURCE, build)
        replaced = root.get("next")
        assert replaced.type_name == "Nil"
        assert replaced.get("payload") == 42
        assert replaced.get("next") is None

    def test_new_node_gets_fresh_address(self):
        def build(program, heap):
            tail = Node.new(program, heap, "Nil")
            marked = Node.new(program, heap, "Cons", kind=7, next=tail)
            return Node.new(program, heap, "Cons", next=marked)

        program, root, interp = _run(self.SOURCE, build)
        assert root.get("next").address > root.address


class TestGlobalsAndPure:
    SOURCE = """
    int TOTAL;
    _pure_ int twice(int x);
    _tree_ class N {
        _child_ N* kid;
        int v = 0;
        _traversal_ virtual void sum() {}
    };
    _tree_ class I : public N {
        _traversal_ void sum() {
            TOTAL = TOTAL + twice(this->v);
            this->kid->sum();
        }
    };
    _tree_ class Z : public N { };
    int main() { N* root = ...; root->sum(); }
    """

    def test_global_accumulation_via_pure(self):
        def build(program, heap):
            node = Node.new(program, heap, "Z")
            for v in (3, 2, 1):
                node = Node.new(program, heap, "I", v=v, kid=node)
            return node

        _, root, interp = _run(
            self.SOURCE, build, pure_impls={"twice": lambda x: 2 * x}
        )
        assert interp.globals["TOTAL"] == 12

    def test_missing_child_raises(self):
        def build(program, heap):
            return Node.new(program, heap, "I", v=1, kid=None)

        with pytest.raises(RuntimeFailure, match="null"):
            _run(self.SOURCE, build, pure_impls={"twice": lambda x: 2 * x})


class TestStatsAndCache:
    def test_memory_traffic_counted(self):
        source = """
        _tree_ class N {
            int a = 0; int b = 0;
            _traversal_ void go() { this->a = this->b + 1; }
        };
        int main() { N* root = ...; root->go(); }
        """
        program = parse_program(source)
        heap = Heap(program)
        root = Node.new(program, heap, "N")
        from repro.cachesim import paper_hierarchy

        stats = ExecStats(cache=paper_hierarchy())
        interp = Interpreter(program, heap, stats)
        interp.run_entry(root)
        assert stats.field_reads == 1
        assert stats.field_writes == 1
        # both fields share one 64B line -> 1 cold miss at each level
        assert stats.miss_counts()["L1"] == 1
        assert stats.modeled_cycles() > stats.instructions

    def test_alias_access_charges_traffic_once_resolved(self):
        source = """
        _tree_ class N {
            _child_ N* kid;
            int v = 0;
            _traversal_ virtual void go() {}
        };
        _tree_ class I : public N {
            _traversal_ void go() {
                N* const k = this->kid;
                k->v = 5;
            }
        };
        _tree_ class Z : public N { };
        int main() { N* root = ...; root->go(); }
        """
        program = parse_program(source)
        heap = Heap(program)
        kid = Node.new(program, heap, "Z")
        root = Node.new(program, heap, "I", kid=kid)
        interp = Interpreter(program, heap)
        interp.run_entry(root)
        assert kid.get("v") == 5
        # one pointer read (alias def) + one field write
        assert interp.stats.field_reads == 1
        assert interp.stats.field_writes == 1


class TestFig2EndToEnd:
    def test_widths_and_heights(self):
        program = fig2_program()
        heap = Heap(program)
        end1 = Node.new(program, heap, "End")
        end2 = Node.new(program, heap, "End")
        inner = Node.new(
            program, heap, "TextBox",
            Text=ObjectValue("String", {"Length": 6}), Next=end1,
        )
        content = Node.new(
            program, heap, "TextBox",
            Text=ObjectValue("String", {"Length": 4}), Next=inner,
        )
        border = Node.new(program, heap, "Group")
        border.set("Content", content)
        border.set("Next", end2)
        border.get("Border").set("Size", 3)
        interp = Interpreter(program, heap)
        interp.globals["CHAR_WIDTH"] = 2
        interp.run_entry(border)
        # widths: inner=6, content=4; group = content.Width + 2*3 = 10
        assert inner.get("Width") == 6
        assert content.get("Width") == 4
        assert border.get("Width") == 10
        # heights computed after widths (second pass order matters)
        assert inner.get("Height") == 6 * (6 // 2) + 1
        assert border.get("MaxHeight") == border.get("Height")
