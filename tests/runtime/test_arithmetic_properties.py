"""Property tests for the interpreter's C++ arithmetic semantics."""

from hypothesis import assume, given, settings, strategies as st

from repro.runtime.interpreter import _cxx_div, _cxx_mod

ints = st.integers(min_value=-10_000, max_value=10_000)


class TestCxxDivision:
    @given(a=ints, b=ints)
    @settings(max_examples=200, deadline=None)
    def test_division_identity(self, a, b):
        """C++ guarantees (a/b)*b + a%b == a."""
        assume(b != 0)
        assert _cxx_div(a, b) * b + _cxx_mod(a, b) == a

    @given(a=ints, b=ints)
    @settings(max_examples=200, deadline=None)
    def test_truncation_toward_zero(self, a, b):
        assume(b != 0)
        quotient = _cxx_div(a, b)
        exact = a / b
        assert abs(quotient) <= abs(exact) + 1e-9
        if exact >= 0:
            assert quotient == int(exact)
        else:
            assert quotient == -int(-a / b) if (a < 0) != (b < 0) else quotient

    @given(a=ints, b=ints)
    @settings(max_examples=200, deadline=None)
    def test_mod_sign_follows_dividend(self, a, b):
        assume(b != 0 and a % b != 0)
        remainder = _cxx_mod(a, b)
        if remainder != 0:
            assert (remainder > 0) == (a > 0)

    def test_known_values(self):
        assert _cxx_div(7, 2) == 3
        assert _cxx_div(-7, 2) == -3
        assert _cxx_div(7, -2) == -3
        assert _cxx_div(-7, -2) == 3
        assert _cxx_mod(-7, 2) == -1
        assert _cxx_mod(7, -2) == 1

    @given(a=st.floats(-1e6, 1e6), b=st.floats(-1e6, 1e6))
    @settings(max_examples=100, deadline=None)
    def test_float_division_is_exact(self, a, b):
        assume(abs(b) > 1e-9)
        assert _cxx_div(a, b) == a / b

    @given(a=ints)
    @settings(max_examples=50, deadline=None)
    def test_bool_operands_coerce_like_cxx(self, a):
        assume(a != 0)
        assert _cxx_div(True, a) == _cxx_div(1, a)
        assert _cxx_mod(a, True) == 0
