"""Property tests on heap layouts and the cache simulator."""

import random

from hypothesis import given, settings, strategies as st

from repro.cachesim import SetAssociativeCache
from repro.frontend import parse_program
from repro.runtime.heap import HEADER_BYTES, WORD, compute_layout

from tests.fixtures import fig2_program


class TestLayoutInvariants:
    def _layouts(self):
        program = fig2_program()
        return program, {
            name: compute_layout(program, name) for name in program.tree_types
        }

    def test_offsets_unique_and_word_aligned(self):
        _, layouts = self._layouts()
        for layout in layouts.values():
            offsets = list(layout.field_offsets.values()) + list(
                layout.member_offsets.values()
            )
            # member offsets may equal their field offset (first member)
            field_offsets = list(layout.field_offsets.values())
            assert len(set(field_offsets)) == len(field_offsets)
            assert all(o % WORD == 0 for o in offsets)
            assert all(o >= HEADER_BYTES for o in offsets)

    def test_fields_fit_in_node_size(self):
        _, layouts = self._layouts()
        for layout in layouts.values():
            highest = max(
                list(layout.field_offsets.values())
                + list(layout.member_offsets.values()),
                default=0,
            )
            assert highest + WORD <= layout.size

    def test_base_prefix_shared_across_subtypes(self):
        program, layouts = self._layouts()
        base = layouts["Element"]
        for subtype in ("TextBox", "Group", "End"):
            sub = layouts[subtype]
            for name, offset in base.field_offsets.items():
                assert sub.field_offsets[name] == offset


class TestCacheProperties:
    @given(
        size_pow=st.integers(min_value=9, max_value=12),
        ways_pow=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_miss_count_bounded_by_accesses(self, size_pow, ways_pow, seed):
        # valid geometry needs at least `ways` lines: 2^(size_pow-6) lines
        ways_pow = min(ways_pow, size_pow - 6)
        cache = SetAssociativeCache("t", 2 ** size_pow, 2 ** ways_pow)
        rng = random.Random(seed)
        addresses = [rng.randrange(0, 1 << 16) for _ in range(300)]
        for address in addresses:
            cache.access(address)
        assert cache.misses + cache.hits == len(addresses)
        distinct_lines = {a >> 6 for a in addresses}
        assert cache.misses >= len(distinct_lines) - cache.size_bytes // 64
        assert cache.misses <= len(addresses)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_bigger_cache_never_misses_more_lru(self, seed):
        """LRU inclusion property on fully-associative caches: a larger
        cache never takes more misses on the same trace."""
        small = SetAssociativeCache("s", 4 * 64, 4)  # 4 lines, 1 set
        large = SetAssociativeCache("l", 8 * 64, 8)  # 8 lines, 1 set
        rng = random.Random(seed)
        for _ in range(400):
            address = rng.randrange(0, 1 << 12)
            small.access(address)
            large.access(address)
        assert large.misses <= small.misses

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_repeat_trace_second_pass_no_worse_when_fits(self, seed):
        cache = SetAssociativeCache("t", 32 * 64, 8)
        rng = random.Random(seed)
        trace = [rng.randrange(0, 16 * 64) for _ in range(100)]  # fits
        for address in trace:
            cache.access(address)
        first_misses = cache.misses
        for address in trace:
            cache.access(address)
        assert cache.misses == first_misses  # everything resident
