"""Value-semantics tests: opaque objects, defaults, copying."""

import pytest

from repro.errors import RuntimeFailure
from repro.frontend import parse_program
from repro.runtime.values import ObjectValue, copy_value, default_value


def _program():
    return parse_program("""
    class Pair { int a; int b; };
    _tree_ class N { int x = 0; };
    """)


class TestObjectValue:
    def test_member_access(self):
        value = ObjectValue("Pair", {"a": 1, "b": 2})
        assert value.get("a") == 1
        value.set("b", 5)
        assert value.get("b") == 5

    def test_unknown_member_raises(self):
        value = ObjectValue("Pair", {"a": 1})
        with pytest.raises(RuntimeFailure):
            value.get("zzz")
        with pytest.raises(RuntimeFailure):
            value.set("zzz", 0)

    def test_copy_is_deep_for_members(self):
        value = ObjectValue("Pair", {"a": 1, "b": 2})
        clone = value.copy()
        clone.set("a", 99)
        assert value.get("a") == 1

    def test_equality_by_value(self):
        assert ObjectValue("Pair", {"a": 1}) == ObjectValue("Pair", {"a": 1})
        assert ObjectValue("Pair", {"a": 1}) != ObjectValue("Pair", {"a": 2})
        assert ObjectValue("Pair", {"a": 1}) != ObjectValue("Other", {"a": 1})

    def test_repr_readable(self):
        assert "Pair(a=1" in repr(ObjectValue("Pair", {"a": 1, "b": 2}))


class TestDefaults:
    def test_primitive_defaults(self):
        program = _program()
        assert default_value(program, "int") == 0
        assert default_value(program, "double") == 0.0
        assert default_value(program, "bool") is False
        assert default_value(program, "char") == "\0"

    def test_opaque_default_has_zeroed_members(self):
        program = _program()
        value = default_value(program, "Pair")
        assert value.get("a") == 0 and value.get("b") == 0

    def test_unknown_type_raises(self):
        program = _program()
        with pytest.raises(RuntimeFailure):
            default_value(program, "Mystery")


class TestCopyValue:
    def test_primitives_pass_through(self):
        assert copy_value(7) == 7
        assert copy_value(1.5) == 1.5
        assert copy_value(True) is True

    def test_objects_are_copied(self):
        value = ObjectValue("Pair", {"a": 1})
        clone = copy_value(value)
        assert clone == value and clone is not value


class TestByValueSemantics:
    def test_parameter_mutation_does_not_leak(self):
        """Opaque objects are passed by value (paper rule 4): mutating a
        parameter inside a pure function cannot affect the caller."""
        source = """
        class Box { int v; };
        _pure_ int bump(Box b);
        _tree_ class N {
            Box box;
            int out = 0;
            _traversal_ void go() {
                this->out = bump(this->box);
            }
        };
        int main() { N* root = ...; root->go(); }
        """

        def bump(box):
            box.set("v", box.get("v") + 100)  # mutate the copy
            return box.get("v")

        from repro.runtime import Heap, Interpreter, Node

        program = parse_program(source, pure_impls={"bump": bump})
        heap = Heap(program)
        root = Node.new(program, heap, "N", box=ObjectValue("Box", {"v": 5}))
        interp = Interpreter(program, heap)
        interp.run_entry(root)
        assert root.get("out") == 105
        assert root.get("box").get("v") == 5  # caller's object untouched
