"""LatencySeries percentile edge behaviour: empty, single-sample,
interpolation, duplicates, and monotonicity."""

import pytest

from repro.runtime import LatencyHistogram
from repro.runtime.stats import LatencySeries


def series(values):
    s = LatencySeries()
    for value in values:
        s.record(value)
    return s


def test_empty_series_answers_zero():
    empty = LatencySeries()
    assert empty.percentile(50) == 0.0
    assert empty.percentile(99) == 0.0
    assert empty.summary() == {
        "count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0,
    }


def test_single_sample_answers_itself_everywhere():
    s = series([0.25])
    for p in (0, 1, 50, 99, 100):
        assert s.percentile(p) == 0.25


def test_extremes_are_min_and_max():
    s = series([5.0, 1.0, 3.0, 2.0, 4.0])
    assert s.percentile(0) == 1.0
    assert s.percentile(100) == 5.0


def test_even_count_p50_is_midpoint():
    assert series([1.0, 2.0]).percentile(50) == pytest.approx(1.5)
    assert series([1.0, 2.0, 3.0, 4.0]).percentile(50) == pytest.approx(
        2.5
    )


def test_odd_count_p50_is_middle_sample():
    assert series([3.0, 1.0, 2.0]).percentile(50) == 2.0


def test_p99_interpolates_between_order_statistics():
    s = series([float(i) for i in range(1, 101)])  # 1..100
    # rank = 99 * 0.99 = 98.01 -> between the 99th and 100th samples
    assert s.percentile(99) == pytest.approx(99.01)
    assert s.percentile(90) == pytest.approx(90.1)


def test_duplicate_heavy_series():
    s = series([1.0] * 98 + [10.0, 10.0])
    assert s.percentile(50) == 1.0
    assert s.percentile(97) == 1.0
    assert s.percentile(99) == pytest.approx(10.0)
    assert series([2.0] * 5).percentile(99) == 2.0


def test_out_of_range_p_clamps():
    s = series([1.0, 2.0, 3.0])
    assert s.percentile(-10) == 1.0
    assert s.percentile(250) == 3.0


def test_percentile_is_monotone_in_p():
    s = series([0.4, 0.1, 0.9, 0.2, 0.7, 0.6, 0.3])
    values = [s.percentile(p) for p in range(0, 101, 5)]
    assert values == sorted(values)
    assert min(s.samples) <= values[0] <= values[-1] <= max(s.samples)


def test_merge_preserves_percentiles():
    a = series([1.0, 2.0])
    b = series([3.0, 4.0])
    a.merge(b)
    assert a.percentile(50) == pytest.approx(2.5)
    assert a.summary()["count"] == 4


def test_latency_histogram_alias():
    assert LatencyHistogram is LatencySeries
