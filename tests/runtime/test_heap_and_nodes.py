"""Heap layout and node construction tests."""

import pytest

from repro.errors import RuntimeFailure
from repro.runtime import Heap, Node
from repro.runtime.heap import HEADER_BYTES, WORD, compute_layout
from repro.runtime.values import ObjectValue

from tests.fixtures import fig2_program


class TestLayout:
    def test_base_fields_before_derived(self):
        program = fig2_program()
        layout = compute_layout(program, "TextBox")
        # Element declares Next, Height, Width, MaxHeight, TotalWidth;
        # TextBox adds Text (a String with one member)
        assert layout.field_offsets["Next"] == HEADER_BYTES
        assert layout.field_offsets["Height"] == HEADER_BYTES + WORD
        assert layout.field_offsets["Text"] > layout.field_offsets["TotalWidth"]

    def test_opaque_members_inline(self):
        program = fig2_program()
        layout = compute_layout(program, "Group")
        border_offset = layout.field_offsets["Border"]
        assert layout.offset_of("Border", "Size") == border_offset

    def test_size_rounded_to_16(self):
        program = fig2_program()
        for type_name in program.tree_types:
            layout = compute_layout(program, type_name)
            assert layout.size % 16 == 0
            assert layout.size >= HEADER_BYTES

    def test_subtype_layout_extends_base(self):
        program = fig2_program()
        element = compute_layout(program, "End")
        textbox = compute_layout(program, "TextBox")
        for name, offset in element.field_offsets.items():
            assert textbox.field_offsets[name] == offset


class TestHeap:
    def test_bump_allocation_is_sequential(self):
        program = fig2_program()
        heap = Heap(program)
        a = heap.allocate("End")
        b = heap.allocate("End")
        assert b == a + heap.layout("End").size

    def test_footprint_tracks_bytes(self):
        program = fig2_program()
        heap = Heap(program)
        heap.allocate("TextBox")
        heap.allocate("Group")
        expected = heap.layout("TextBox").size + heap.layout("Group").size
        assert heap.footprint_bytes == expected

    def test_global_addresses_distinct(self):
        program = fig2_program()
        heap = Heap(program)
        assert heap.global_address("CHAR_WIDTH") >= Heap.GLOBALS_BASE
        with pytest.raises(RuntimeFailure):
            heap.global_address("NOPE")


class TestNode:
    def test_defaults_from_declarations(self):
        program = fig2_program()
        heap = Heap(program)
        node = Node.new(program, heap, "TextBox")
        assert node.get("Width") == 0
        assert node.get("Next") is None
        text = node.get("Text")
        assert isinstance(text, ObjectValue)
        assert text.get("Length") == 0

    def test_overrides(self):
        program = fig2_program()
        heap = Heap(program)
        node = Node.new(
            program, heap, "TextBox",
            Text=ObjectValue("String", {"Length": 9}),
        )
        assert node.get("Text").get("Length") == 9

    def test_cannot_instantiate_abstract(self):
        program = fig2_program()
        heap = Heap(program)
        with pytest.raises(RuntimeFailure, match="abstract"):
            Node.new(program, heap, "Element")

    def test_unknown_field_override_rejected(self):
        program = fig2_program()
        heap = Heap(program)
        with pytest.raises(RuntimeFailure, match="no field"):
            Node.new(program, heap, "End", Bogus=1)

    def test_walk_and_count(self):
        program = fig2_program()
        heap = Heap(program)
        end = Node.new(program, heap, "End")
        leaf = Node.new(
            program, heap, "TextBox",
            Text=ObjectValue("String", {"Length": 2}), Next=end,
        )
        group = Node.new(program, heap, "Group", Content=leaf, Next=None)
        # Next of group is None; walk skips it
        assert group.count_nodes(program) == 3

    def test_snapshot_detects_difference(self):
        program = fig2_program()
        heap = Heap(program)
        a = Node.new(program, heap, "End")
        b = Node.new(program, heap, "End")
        assert a.snapshot(program) == b.snapshot(program)
        a.set("Width", 5)
        assert a.snapshot(program) != b.snapshot(program)
