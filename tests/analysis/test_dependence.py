"""Dependence-graph tests, including the paper's Fig. 1 scenario and
call automata (Fig. 5 / Algorithm 1) behaviour."""

from repro.analysis import (
    AnalysisContext,
    build_call_graph,
    build_dependence_graph,
)
from repro.frontend import parse_program

from tests.fixtures import fig1_program, fig2_program


def _graph_for(program, seq):
    ctx = AnalysisContext(program)
    members = [program.resolve_method(t, m) for t, m in seq]
    return build_dependence_graph(ctx, members)


class TestFig1:
    """Fig. 1: f1 writes this.x (s1), f2 reads this.x (s2) => s1 -> s2."""

    def test_s1_to_s2_dependence(self):
        program = fig1_program()
        graph = _graph_for(program, [("Inner", "f1"), ("Inner", "f2")])
        # vertex order: [f1: call f3, f1: s1 writes x] [f2: s2 reads x, f2: call f4]
        s1 = graph.vertices[1]
        s2 = graph.vertices[2]
        assert "x" in str(s1.stmt)
        assert graph.has_edge(s1.index, s2.index)

    def test_calls_on_same_child_are_independent_when_disjoint(self):
        # f3 only touches y below the child; f4 only touches x below the
        # child; the two calls don't conflict with each other.
        program = fig1_program()
        graph = _graph_for(program, [("Inner", "f1"), ("Inner", "f2")])
        call_f3 = graph.vertices[0]
        call_f4 = graph.vertices[3]
        assert call_f3.is_call and call_f4.is_call
        assert not graph.has_edge(call_f3.index, call_f4.index)

    def test_s2_depends_on_call_f4(self):
        # s2 reads this.x; f4 on the *child* writes child.x — disjoint
        # locations (different nodes), so no dependence; but f4's call
        # vertex and s1 (writes this.x at the same node)? also disjoint.
        # The only other required edge: s2 reads this.x while f4 writes
        # this.child.x — no edge. Assert exact edge set for the sequence.
        program = fig1_program()
        graph = _graph_for(program, [("Inner", "f1"), ("Inner", "f2")])
        edges = {
            (src, dst) for src, dsts in graph.succ.items() for dst in dsts
        }
        assert (1, 2) in edges  # s1 -> s2 through this.x

    def test_same_function_twice_copies_are_distinct(self):
        program = fig1_program()
        graph = _graph_for(program, [("Inner", "f1"), ("Inner", "f1")])
        # both copies write this.x -> write/write dependence across copies
        s1_first = graph.vertices[1]
        s1_second = graph.vertices[3]
        assert graph.has_edge(s1_first.index, s1_second.index)


class TestFig2:
    def test_width_before_height_dependences(self):
        program = fig2_program()
        graph = _graph_for(
            program, [("TextBox", "computeWidth"), ("TextBox", "computeHeight")]
        )
        # computeHeight reads this->Width which computeWidth writes
        width_assign = graph.vertices[1]
        height_assign = graph.vertices[4]
        assert "Width" in str(width_assign.stmt)
        assert "Height" in str(height_assign.stmt)
        assert graph.has_edge(width_assign.index, height_assign.index)

    def test_group_calls_on_different_children_independent(self):
        program = fig2_program()
        graph = _graph_for(
            program, [("Group", "computeWidth"), ("Group", "computeHeight")]
        )
        vertices = graph.vertices
        # Content->computeWidth() vs Next->computeHeight(): different
        # children, disjoint subtrees -> no dependence either way.
        content_w = vertices[0]
        next_h = vertices[5]
        assert content_w.call.receiver.child.name == "Content"
        assert next_h.call.receiver.child.name == "Next"
        assert not graph.has_edge(content_w.index, next_h.index)

    def test_calls_on_same_child_conflict_through_width(self):
        program = fig2_program()
        graph = _graph_for(
            program, [("Group", "computeWidth"), ("Group", "computeHeight")]
        )
        # Content->computeWidth() writes Content subtree widths;
        # Content->computeHeight() *reads* Width (TextBox height uses
        # Width) -> dependence between the two calls on the same child.
        content_w = graph.vertices[0]
        content_h = graph.vertices[4]
        assert content_h.call.receiver.child.name == "Content"
        assert graph.has_edge(content_w.index, content_h.index)


class TestControlDependence:
    SOURCE = """
    _tree_ class Node {
        _child_ Node* kid;
        int a = 0;
        int b = 0;
        int stop = 0;
        _traversal_ virtual void go() {}
        _traversal_ virtual void other() {}
    };
    _tree_ class Inner : public Node {
        _traversal_ void go() {
            if (this->stop == 1) return;
            this->a = 1;
            this->kid->go();
        }
        _traversal_ void other() {
            this->b = 2;
        }
    };
    _tree_ class Stop : public Node { };
    """

    def test_return_orders_same_copy_statements(self):
        program = parse_program(self.SOURCE)
        graph = _graph_for(program, [("Inner", "go"), ("Inner", "other")])
        guard = graph.vertices[0]
        assign_a = graph.vertices[1]
        call = graph.vertices[2]
        assert guard.has_return
        assert graph.has_edge(guard.index, assign_a.index)
        assert graph.has_edge(guard.index, call.index)

    def test_return_does_not_order_other_copies(self):
        program = parse_program(self.SOURCE)
        graph = _graph_for(program, [("Inner", "go"), ("Inner", "other")])
        guard = graph.vertices[0]
        assign_b = graph.vertices[3]
        assert assign_b.member == 1
        # different copy, disjoint data -> movable past the return
        assert not graph.has_edge(guard.index, assign_b.index)


class TestCallAutomata:
    def test_mutual_recursion_terminates_and_summarizes(self):
        source = """
        _tree_ class A {
            _child_ B* b;
            int x = 0;
            _traversal_ virtual void ping() {}
        };
        _tree_ class B {
            _child_ A* a;
            int y = 0;
            _traversal_ virtual void pong() {}
        };
        _tree_ class A2 : public A {
            _traversal_ void ping() {
                this->b->pong();
                this->x = 1;
            }
        };
        _tree_ class B2 : public B {
            _traversal_ void pong() {
                this->a->ping();
                this->y = 2;
            }
        };
        """
        program = parse_program(source)
        ctx = AnalysisContext(program)
        method = program.tree_types["A2"].methods["ping"]
        call = method.body[0]
        summary = ctx.call_summary(method, call)
        from repro.analysis import ROOT_LABEL

        # the call may write this->b.y, this->b->a.x, this->b->a->b.y, ...
        assert summary.tree_writes.accepts([ROOT_LABEL, "A.b", "B.y"])
        assert summary.tree_writes.accepts(
            [ROOT_LABEL, "A.b", "B.a", "A.x"]
        )
        assert summary.tree_writes.accepts(
            [ROOT_LABEL, "A.b", "B.a", "A.b", "B.y"]
        )
        assert not summary.tree_writes.accepts([ROOT_LABEL, "A.x"])

    def test_virtual_dispatch_unions_all_overrides(self):
        program = fig2_program()
        ctx = AnalysisContext(program)
        method = program.tree_types["Group"].methods["computeWidth"]
        call = method.body[0]  # this->Content->computeWidth()
        summary = ctx.call_summary(method, call)
        from repro.analysis import ROOT_LABEL

        # TextBox::computeWidth writes Width below Content...
        assert summary.tree_writes.accepts(
            [ROOT_LABEL, "Group.Content", "Element.Width"]
        )
        # ...and Group::computeWidth recurses through Content->Content
        assert summary.tree_writes.accepts(
            [ROOT_LABEL, "Group.Content", "Group.Content", "Element.TotalWidth"]
        )
        # reads the child pointer itself
        assert summary.tree_reads.accepts([ROOT_LABEL, "Group.Content"])

    def test_call_graph_contents(self):
        program = fig2_program()
        method = program.tree_types["Group"].methods["computeWidth"]
        graph = build_call_graph(program, [method])
        names = set(graph.methods)
        assert "Group::computeWidth" in names
        assert "TextBox::computeWidth" in names
        assert "Element::computeWidth" in names  # End inherits the no-op
        labels = {e.label for e in graph.edges}
        assert "Group.Content" in labels
        assert "Element.Next" in labels
