"""Direct tests for the labeled call graph and dispatch resolution."""

from repro.analysis import build_call_graph, call_targets, dispatch_targets
from repro.frontend import parse_program

from tests.fixtures import fig2_program

MUTUAL = """
_tree_ class A {
    _child_ B* b;
    int x = 0;
    _traversal_ virtual void ping() {}
};
_tree_ class B {
    _child_ A* a;
    int y = 0;
    _traversal_ virtual void pong() {}
};
_tree_ class A2 : public A {
    _traversal_ void ping() { this->b->pong(); }
};
_tree_ class A3 : public A {
    _traversal_ void ping() { this->b->pong(); this->x = 1; }
};
_tree_ class B2 : public B {
    _traversal_ void pong() { this->a->ping(); }
};
"""


class TestDispatchTargets:
    def test_targets_deduplicate_shared_impls(self):
        program = fig2_program()
        # TextBox, Group, End all resolve computeWidth; End inherits
        # Element's no-op, so three types yield three distinct methods
        targets = dispatch_targets(program, "Element", "computeWidth")
        names = [t.qualified_name for t in targets]
        assert names == [
            "Element::computeWidth",
            "Group::computeWidth",
            "TextBox::computeWidth",
        ]

    def test_static_type_narrows_targets(self):
        program = fig2_program()
        targets = dispatch_targets(program, "TextBox", "computeWidth")
        assert [t.qualified_name for t in targets] == ["TextBox::computeWidth"]

    def test_mutual_recursion_targets(self):
        program = parse_program(MUTUAL)
        targets = dispatch_targets(program, "A", "ping")
        assert {t.qualified_name for t in targets} == {
            "A::ping", "A2::ping", "A3::ping",
        }


class TestCallGraph:
    def test_reachability_closes_over_mutual_recursion(self):
        program = parse_program(MUTUAL)
        root = program.tree_types["A2"].methods["ping"]
        graph = build_call_graph(program, [root])
        assert {"A2::ping", "B2::pong", "B::pong"} <= set(graph.methods)
        # B2::pong calls back into every ping override
        assert "A3::ping" in graph.methods

    def test_edges_labeled_with_child_fields(self):
        program = parse_program(MUTUAL)
        root = program.tree_types["A2"].methods["ping"]
        graph = build_call_graph(program, [root])
        labels = {e.label for e in graph.edges}
        assert labels == {"A.b", "B.a"}

    def test_successors_deterministic(self):
        program = parse_program(MUTUAL)
        root = program.tree_types["B2"].methods["pong"]
        graph = build_call_graph(program, [root])
        successors = graph.successors("B2::pong")
        assert [e.dst for e in successors] == sorted(e.dst for e in successors)

    def test_call_targets_for_this_receiver(self):
        source = """
        _tree_ class N {
            int x = 0;
            _traversal_ virtual void outer() {}
            _traversal_ virtual void inner() {}
        };
        _tree_ class M : public N {
            _traversal_ void outer() { this->inner(); }
            _traversal_ void inner() { this->x = 1; }
        };
        """
        program = parse_program(source)
        outer = program.tree_types["M"].methods["outer"]
        call = outer.body[0]
        # `this` inside M::outer may be any concrete subtype of M
        targets = call_targets(program, outer, call)
        assert [t.qualified_name for t in targets] == ["M::inner"]

    def test_graph_size_is_bounded_by_method_count(self):
        program = fig2_program()
        roots = [
            program.resolve_method("Group", "computeWidth"),
            program.resolve_method("Group", "computeHeight"),
        ]
        graph = build_call_graph(program, roots)
        total_methods = sum(1 for _ in program.all_methods())
        assert graph.size <= total_methods
