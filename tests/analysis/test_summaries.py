"""Unit tests for statement summaries and the interference test."""

from repro.analysis.accesses import AccessInfo
from repro.analysis.summaries import (
    ROOT_LABEL,
    StatementSummary,
    interferes,
    merge_summaries,
)


def summary(tree_reads=(), tree_writes=(), env_reads=(), env_writes=()):
    def infos(specs):
        return [
            AccessInfo(labels=tuple(labels), any_suffix=any_suffix)
            for labels, any_suffix in specs
        ]

    return StatementSummary.from_accesses(
        tree_reads=infos(tree_reads),
        tree_writes=infos(tree_writes),
        env_reads=infos(env_reads),
        env_writes=infos(env_writes),
    )


class TestInterference:
    def test_read_read_never_interferes(self):
        a = summary(tree_reads=[(("x",), False)])
        b = summary(tree_reads=[(("x",), False)])
        assert not interferes(a, b)

    def test_write_read_same_field(self):
        a = summary(tree_writes=[(("x",), False)])
        b = summary(tree_reads=[(("x",), False)])
        assert interferes(a, b)
        assert interferes(b, a)  # symmetric

    def test_write_write_same_field(self):
        a = summary(tree_writes=[(("x",), False)])
        b = summary(tree_writes=[(("x",), False)])
        assert interferes(a, b)

    def test_disjoint_fields_independent(self):
        a = summary(tree_writes=[(("x",), False)])
        b = summary(tree_reads=[(("y",), False)])
        assert not interferes(a, b)

    def test_write_conflicts_with_deeper_read_prefix(self):
        # writing c conflicts with reading c.x (the read touches c's cell
        # via its prefix)
        a = summary(tree_writes=[(("c",), False)])
        b = summary(tree_reads=[(("c", "x"), False)])
        assert interferes(a, b)

    def test_deep_write_conflicts_with_shallow_write_via_prefix_read(self):
        # the access collector adds a prefix read for every deep write
        # (navigating to c.x reads the pointer c); with it, writing the
        # pointer cell c conflicts
        a = summary(
            tree_writes=[(("c", "x"), False)],
            tree_reads=[(("c",), False)],
        )
        b = summary(tree_writes=[(("c",), False)])
        assert interferes(a, b)

    def test_deep_write_alone_is_a_different_location(self):
        # without the prefix read, c.x and the pointer cell c are
        # disjoint locations (write automata accept only full paths)
        a = summary(tree_writes=[(("c", "x"), False)])
        b = summary(tree_writes=[(("c",), False)])
        assert not interferes(a, b)

    def test_any_suffix_covers_subtree(self):
        delete = summary(tree_writes=[(("c",), True)])
        deep = summary(tree_reads=[(("c", "q", "z"), False)])
        assert interferes(delete, deep)

    def test_env_and_tree_namespaces_are_separate(self):
        # a global named like a field never collides with the field
        a = summary(tree_writes=[(("x",), False)])
        b = summary(env_reads=[(("::x",), False)])
        assert not interferes(a, b)

    def test_local_copies_distinguished_by_rename(self):
        a = summary(env_writes=[(("local:0:t",), False)])
        b = summary(env_reads=[(("local:1:t",), False)])
        assert not interferes(a, b)
        c = summary(env_reads=[(("local:0:t",), False)])
        assert interferes(a, c)

    def test_global_write_conflicts_with_member_read(self):
        a = summary(env_writes=[(("::g",), True)])
        b = summary(env_reads=[(("::g", "Pair.a"), False)])
        assert interferes(a, b)


class TestMergeSummaries:
    def test_merge_unions_languages(self):
        a = summary(tree_writes=[(("x",), False)])
        b = summary(tree_writes=[(("y",), False)])
        merged = merge_summaries([a, b])
        reader_x = summary(tree_reads=[(("x",), False)])
        reader_y = summary(tree_reads=[(("y",), False)])
        assert interferes(merged, reader_x)
        assert interferes(merged, reader_y)

    def test_root_label_in_languages(self):
        a = summary(tree_writes=[(("x",), False)])
        assert a.tree_writes.accepts([ROOT_LABEL, "x"])
        assert not a.tree_writes.accepts(["x"])
