"""Tests for raw access-path extraction (abstract interpretation)."""

from repro.analysis import collect_method_accesses
from repro.frontend import parse_program

from tests.fixtures import fig2_program


def _accesses(program, type_name, method_name):
    method = program.tree_types[type_name].methods[method_name]
    return collect_method_accesses(program, method)


class TestSimpleStatements:
    def test_textbox_width_assign(self):
        program = fig2_program()
        accesses = _accesses(program, "TextBox", "computeWidth")
        # stmt 1: this->Width = this->Text.Length;
        assign = accesses[1]
        assert [i.labels for i in assign.tree_writes] == [("Element.Width",)]
        read_labels = {i.labels for i in assign.tree_reads}
        assert ("TextBox.Text", "String.Length") in read_labels

    def test_cross_child_read(self):
        program = fig2_program()
        accesses = _accesses(program, "TextBox", "computeWidth")
        # stmt 2: this->TotalWidth = this->Next->Width + this->Width;
        assign = accesses[2]
        read_labels = {i.labels for i in assign.tree_reads}
        assert ("Element.Next", "Element.Width") in read_labels
        assert ("Element.Width",) in read_labels
        # prefix reads (this->Next) are covered at the automaton level by
        # accept_prefixes=True, not duplicated in the raw access list
        from repro.analysis import ROOT_LABEL, StatementSummary

        summary = StatementSummary.from_accesses(
            assign.tree_reads, assign.tree_writes,
            assign.env_reads, assign.env_writes,
        )
        assert summary.tree_reads.accepts([ROOT_LABEL, "Element.Next"])

    def test_global_read_classified_off_tree(self):
        program = fig2_program()
        accesses = _accesses(program, "TextBox", "computeHeight")
        assign = accesses[1]
        env_labels = {i.labels for i in assign.env_reads}
        assert ("::CHAR_WIDTH",) in env_labels
        assert all(not i.labels[0].startswith("::") for i in assign.tree_reads)

    def test_if_unions_branches_and_cond(self):
        program = fig2_program()
        accesses = _accesses(program, "TextBox", "computeHeight")
        if_access = accesses[3]
        reads = {i.labels for i in if_access.tree_reads}
        writes = {i.labels for i in if_access.tree_writes}
        assert ("Element.Next", "Element.Height") in reads  # condition
        assert ("Element.MaxHeight",) in writes  # then-branch

    def test_call_statement_records_args_and_pointer(self):
        program = fig2_program()
        accesses = _accesses(program, "Group", "computeWidth")
        call = accesses[0]  # this->Content->computeWidth();
        reads = {i.labels for i in call.tree_reads}
        assert ("Group.Content",) in reads
        assert not call.tree_writes


class TestMutationStatements:
    SOURCE = """
    _tree_ class Node {
        _child_ Node* kid;
        int tag = 0;
        _traversal_ virtual void rewrite() {}
    };
    _tree_ class Inner : public Node {
        _traversal_ void rewrite() {
            delete this->kid;
            this->kid = new Leaf();
        }
    };
    _tree_ class Leaf : public Node { };
    """

    def test_delete_writes_subtree_with_any(self):
        program = parse_program(self.SOURCE)
        accesses = collect_method_accesses(
            program, program.tree_types["Inner"].methods["rewrite"]
        )
        delete = accesses[0]
        assert len(delete.tree_writes) == 1
        info = delete.tree_writes[0]
        assert info.labels == ("Node.kid",)
        assert info.any_suffix

    def test_new_writes_subtree_with_any(self):
        program = parse_program(self.SOURCE)
        accesses = collect_method_accesses(
            program, program.tree_types["Inner"].methods["rewrite"]
        )
        new = accesses[1]
        info = new.tree_writes[0]
        assert info.labels == ("Node.kid",)
        assert info.any_suffix


class TestAliasInlining:
    SOURCE = """
    _tree_ class Node {
        _child_ Node* kid;
        int value = 0;
        _traversal_ virtual void go() {}
    };
    _tree_ class Inner : public Node {
        _traversal_ void go() {
            Node* const k = this->kid;
            k->value = k->value + 1;
        }
    };
    _tree_ class Stop : public Node { };
    """

    def test_alias_paths_become_this_rooted(self):
        program = parse_program(self.SOURCE)
        accesses = collect_method_accesses(
            program, program.tree_types["Inner"].methods["go"]
        )
        alias_def, assign = accesses
        # defining the alias reads the pointer chain
        assert ("Node.kid",) in {i.labels for i in alias_def.tree_reads}
        # uses through the alias resolve to this->kid.value
        assert [i.labels for i in assign.tree_writes] == [
            ("Node.kid", "Node.value")
        ]
        assert ("Node.kid", "Node.value") in {i.labels for i in assign.tree_reads}
        # nothing leaked into the environment sets
        assert not assign.env_writes

    def test_whole_object_reads_get_any_suffix(self):
        source = """
        class Config { int a; int b; };
        _pure_ int digest(Config c);
        _tree_ class Node {
            Config conf;
            int out = 0;
            _traversal_ void go() {
                this->out = digest(this->conf);
            }
        };
        """
        program = parse_program(source, pure_impls={"digest": lambda c: 0})
        accesses = collect_method_accesses(
            program, program.tree_types["Node"].methods["go"]
        )
        reads = accesses[0].tree_reads
        conf_reads = [i for i in reads if i.labels == ("Node.conf",)]
        assert conf_reads and conf_reads[0].any_suffix
