"""The fuzzing harness itself: determinism, the committed seed corpus,
repro-file round trips, error handling, and the minimizer."""

import json
import pathlib

import pytest

from repro.fuzz import (
    BASELINE,
    LABELS,
    FuzzCase,
    generate_case,
    load_repro,
    minimize_case,
    run_case,
    save_repro,
)

CORPUS = json.loads(
    (pathlib.Path(__file__).parent / "seeds.json").read_text()
)


class TestDeterminism:
    def test_same_seed_same_case(self):
        assert generate_case(7).to_json() == generate_case(7).to_json()

    def test_different_seeds_differ(self):
        assert generate_case(1).to_json() != generate_case(2).to_json()

    def test_case_is_json_round_trippable(self):
        case = generate_case(11)
        again = FuzzCase.from_json(case.to_json())
        assert again.to_json() == case.to_json()


class TestCorpus:
    @pytest.mark.parametrize("seed", CORPUS["seeds"])
    def test_corpus_seed_has_no_divergence(self, seed):
        result = run_case(
            generate_case(seed, max_depth=CORPUS["max_depth"])
        )
        assert result.ok, result.report()
        # all six executions actually ran and were compared
        assert set(result.records) | set(result.errors) == set(LABELS)


class TestReproFiles:
    def test_save_load_round_trip(self, tmp_path):
        case = generate_case(5)
        path = save_repro(case, str(tmp_path / "repro.json"))
        loaded = load_repro(path)
        assert loaded.to_json() == case.to_json()
        assert run_case(loaded).ok

    def test_replay_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "repro.json")
        save_repro(generate_case(3), path)
        assert main(["fuzz", "--replay", path]) == 0
        assert "OK" in capsys.readouterr().out


class TestErrorHandling:
    def test_errors_on_every_executor_are_not_divergences(self):
        # every executor dereferences the same null child; the raised
        # types differ (the interpreter's RuntimeFailure vs whatever
        # the generated code trips over), but error *presence* agrees —
        # that's agreement, not divergence
        source = "\n".join(
            [
                "_abstract_ _tree_ class N {",
                "    _child_ N* c0;",
                "    _child_ N* c1;",
                "    int d0 = 0;",
                "    _traversal_ virtual void f0(int p0) {}",
                "};",
                "_tree_ class A : public N {",
                "    _traversal_ void f0(int p0) {",
                "        this->c0->f0(p0);",
                "    }",
                "};",
                "_tree_ class Leaf : public N { };",
                "int main() {",
                "    N* root = ...;",
                "    root->f0(0);",
                "}",
            ]
        )
        tree = {
            "__type__": "A",
            "d0": 1,
            "c0": None,
            "c1": None,
        }
        case = FuzzCase(seed=-1, source=source, tree=tree, globals_map={})
        result = run_case(case)
        assert result.ok, result.report()
        assert BASELINE in result.errors
        assert len(result.errors) == len(LABELS)


class TestMinimizer:
    def test_shrinks_tree_and_source_under_synthetic_predicate(self):
        case = generate_case(9)
        original_nodes = json.dumps(case.tree).count("__type__")
        # a predicate that's always true lets the minimizer cut
        # everything cuttable: the result is the floor of the shrink
        small = minimize_case(case, diverges=lambda c: True)
        shrunk_nodes = json.dumps(small.tree).count("__type__")
        assert shrunk_nodes < original_nodes
        # every child slot ended up a bare Leaf
        for child in ("c0", "c1"):
            value = small.tree.get(child)
            if isinstance(value, dict):
                assert value["__type__"] == "Leaf"
        assert len(small.source) < len(case.source)

    def test_keeps_case_when_nothing_shrinks(self):
        case = generate_case(9)
        # a predicate that's never true rejects every variant
        same = minimize_case(case, diverges=lambda c: False)
        assert same.to_json() == case.to_json()

    def test_minimized_case_still_diverges_by_its_own_predicate(self):
        case = generate_case(4)
        # divergence := a hazard global-assignment line survives
        predicate = lambda c: "G0 = G0" in c.source  # noqa: E731
        if not predicate(case):
            pytest.skip("seed 4 stopped generating a G0 write")
        small = minimize_case(case, diverges=predicate)
        assert predicate(small)
        assert len(small.source) <= len(case.source)
