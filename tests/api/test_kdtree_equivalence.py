"""The kd-tree twin pin: the embedded definition IS the string one.

Mirrors ``test_render_equivalence`` for the workload that needed
``static_cast`` member chains (the split blocks) — the last construct
the embedded frontend could not spell. Byte-level equivalence between
``repro.workloads.kdtree.embedded`` and the string DSL ``KD_SOURCE``:
same canonical print, same ``source_hash``, byte-identical generated
Python from independent cold compiles — for every Table 6 equation
schedule, since each splices a different entry sequence.
"""

import pytest

from repro.ir.printer import print_program
from repro.pipeline import CompileOptions, hash_program
from repro.pipeline import compile as pipeline_compile
from repro.workloads.kdtree import (
    EQ1_SCHEDULE,
    EQ2_SCHEDULE,
    EQ3_SCHEDULE,
    KD_DEFAULT_GLOBALS,
    equation_program,
    kd_embedded_program,
    kdtree_workload,
)
from repro.workloads.kdtree.embedded import KD_EMBEDDED_GLOBALS

SCHEDULES = {
    "eq1": EQ1_SCHEDULE,
    "eq2": EQ2_SCHEDULE,
    "eq3": EQ3_SCHEDULE,
}


@pytest.mark.parametrize("label", sorted(SCHEDULES))
class TestKdtreeEquivalence:
    def test_canonical_print_is_identical(self, label):
        schedule = SCHEDULES[label]
        assert print_program(
            kd_embedded_program(schedule, name=f"kdtree-{label}")
        ) == print_program(equation_program(schedule, name=f"kdtree-{label}"))

    def test_source_hash_is_identical(self, label):
        # impls are the *same* callables in both frontends, so the
        # content hashes agree exactly
        schedule = SCHEDULES[label]
        assert hash_program(
            kd_embedded_program(schedule, name=f"kdtree-{label}")
        ) == hash_program(equation_program(schedule, name=f"kdtree-{label}"))

    def test_field_defaults_survive_lowering(self, label):
        schedule = SCHEDULES[label]
        embedded = kd_embedded_program(schedule, name=f"kdtree-{label}")
        parsed = equation_program(schedule, name=f"kdtree-{label}")
        for name, tree_type in parsed.tree_types.items():
            assert (
                embedded.tree_types[name].data_defaults
                == tree_type.data_defaults
            )

    def test_cold_compiles_emit_identical_modules(self, label):
        # two genuinely independent pipeline runs (the cache is
        # bypassed), so equality cannot come from one serving the other
        schedule = SCHEDULES[label]
        options = CompileOptions(use_cache=False)
        from_embedded = pipeline_compile(
            kd_embedded_program(schedule, name=f"kdtree-{label}"),
            options=options,
        )
        from_string = pipeline_compile(
            equation_program(schedule, name=f"kdtree-{label}"),
            options=options,
        )
        assert from_embedded.source_hash == from_string.source_hash
        assert from_embedded.fused_source == from_string.fused_source
        assert from_embedded.unfused_source == from_string.unfused_source


def test_workload_globals_match_legacy_defaults():
    assert KD_EMBEDDED_GLOBALS == KD_DEFAULT_GLOBALS
    assert dict(kdtree_workload().globals_map) == KD_DEFAULT_GLOBALS


def test_embedded_workload_runs_the_equation():
    import repro

    with repro.Session(workers=1, backend="inline") as session:
        outcome = session.compile(kdtree_workload()).run(trees=2, depth=4)
    assert len(outcome) == 2
    # identical specs -> identical results
    first, second = outcome.summaries
    assert first == second
