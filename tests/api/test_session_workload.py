"""Workload bundles and the Session facade."""

import pickle

import pytest

import repro
from repro.errors import WorkloadError
from repro.pipeline import CompileOptions
from repro.workloads.astlang import astlang_workload
from repro.workloads.fmm import fmm_workload
from repro.workloads.kdtree import kdtree_workload
from repro.workloads.render import render_workload


class TestWorkload:
    def test_specs_from_count_and_sequence(self):
        w = render_workload()
        assert len(w.specs(3, pages=1)) == 3
        explicit = [w.spec(pages=1)]
        assert w.specs(explicit) == explicit
        with pytest.raises(WorkloadError, match="count"):
            w.specs(explicit, pages=2)

    def test_request_carries_the_bundle(self):
        w = render_workload()
        request = w.request(2, pages=1)
        assert request.workload is w
        assert request.build_tree is w.build_tree
        assert request.globals_map == dict(w.globals_map)
        assert len(request.trees) == 2

    def test_program_source_rejects_loose_impls(self):
        w = render_workload()
        with pytest.raises(WorkloadError, match="already binds"):
            repro.Workload(
                name="bad",
                source=w.source,
                build_tree=w.build_tree,
                pure_impls={"imax": max},
            )

    def test_workloads_pickle(self):
        # the service's process backend ships requests (and therefore
        # workload bundles) to spawned/forked workers
        for workload in (
            render_workload(),
            astlang_workload(),
            kdtree_workload(),
            fmm_workload(),
        ):
            clone = pickle.loads(pickle.dumps(workload))
            assert clone.name == workload.name
            assert clone.source_hash() == workload.source_hash()

    def test_compile_shortcut(self):
        result = render_workload().compile(
            options=CompileOptions(emit=False)
        )
        assert result.fused is not None


class TestSession:
    def test_compile_then_run(self):
        with repro.Session(workers=1, backend="inline") as session:
            compiled = session.compile(render_workload())
            outcome = compiled.run(trees=2, pages=1)
        assert len(outcome) == 2
        assert outcome.wall_seconds > 0

    def test_second_compile_hits_the_cache(self):
        with repro.Session() as session:
            first = session.compile(render_workload())
            second = session.compile(render_workload())
        assert second.source_hash == first.source_hash
        assert second.cache_hit

    def test_all_four_workloads_run(self):
        sizes = {
            "render": {"pages": 1},
            "astlang": {"functions": 2},
            "kdtree-eq1": {"depth": 2},
            "fmm": {"particles": 16},
        }
        with repro.Session(workers=1, backend="inline") as session:
            for workload in (
                render_workload(),
                astlang_workload(),
                kdtree_workload(),
                fmm_workload(),
            ):
                outcome = session.run(
                    workload, 1, **sizes[workload.name]
                )
                assert len(outcome) == 1

    def test_cache_dir_reaches_the_store(self, tmp_path):
        with repro.Session(cache_dir=str(tmp_path)) as session:
            session.run(render_workload(), 1, pages=1)
            stats = session.stats()
        assert stats["store"]["spills"] >= 1
        assert "executor" in stats

    def test_inline_source_compiles(self):
        source = """
_tree_ class N { _child_ N* kid;
    int x = 0;
    _traversal_ void go() { this->x = 1; this->kid->go(); } };
int main() { N* root = ...; root->go(); }
"""
        with repro.Session() as session:
            compiled = session.compile(source, emit=False)
        assert compiled.fused is not None

    def test_submit_is_async(self):
        with repro.Session(workers=1) as session:
            ticket = session.submit(render_workload(), 1, pages=1)
            result = ticket.result(60)
        assert result.ok
