"""The embedded frontend: lowering, inference, and rejection."""

import pytest

import repro
from repro.api import embed
from repro.errors import EmbedError, ValidationError
from repro.ir.printer import print_program
from repro.ir.stmts import (
    AliasDef,
    Assign,
    Delete,
    If,
    LocalDef,
    New,
    PureStmt,
    Return,
    TraverseStmt,
    While,
)

# --------------------------------------------------------------------------
# a small program exercising every supported construct
# --------------------------------------------------------------------------

LIMIT = repro.Global(int, 10)


@repro.pure
def clamp(a: int, b: int) -> int:
    return a if a <= b else b


@repro.schema
class Meta:
    Tag: int


@repro.schema(abstract=True)
class Node_:
    Left: "Node_"
    Right: "Node_"
    Value: int = 0
    Count: int = 0
    Info: Meta

    @repro.traversal(virtual=True)
    def count(this):
        pass

    @repro.traversal(virtual=True)
    def rebuild(this, bound: int):
        pass


@repro.schema
class Inner(Node_):
    @repro.traversal
    def count(this):
        this.Left.count()
        this.Right.count()
        this.Count = this.Left.Count + this.Right.Count
        this.Count += this.Info.Tag

    @repro.traversal
    def rebuild(this, bound: int):
        total: int = 0
        while total < bound:
            total = total + 1
        if this.Count > LIMIT and total != 0:
            del this.Left
            this.Left = Leaf()
        elif this.Count < 0:
            return
        else:
            clamp(this.Count, bound)
        this.Value = clamp(-this.Count, bound)


@repro.schema
class Leaf(Node_):
    pass


@repro.entry(Node_)
def run(root):
    root.count()
    root.rebuild(3)


def lowered():
    return embed.lower(
        "embed-demo",
        classes=[Meta, Node_, Inner, Leaf],
        pures=[clamp],
        globals_={"LIMIT": LIMIT},
        entry=run,
    )


class TestLowering:
    def test_classification(self):
        program = lowered()
        assert set(program.tree_types) == {"Node_", "Inner", "Leaf"}
        assert set(program.opaque_classes) == {"Meta"}
        assert program.tree_types["Node_"].abstract
        assert set(program.tree_types["Node_"].children) == {
            "Left",
            "Right",
        }
        assert program.tree_types["Node_"].data_defaults["Value"] == 0

    def test_statement_forms(self):
        program = lowered()
        count = program.tree_types["Inner"].methods["count"]
        kinds = [type(s) for s in count.body]
        assert kinds == [
            TraverseStmt,
            TraverseStmt,
            Assign,
            Assign,  # += sugar lowers to a read-modify-write
        ]
        rebuild = program.tree_types["Inner"].methods["rebuild"]
        kinds = [type(s) for s in rebuild.body]
        assert kinds == [LocalDef, While, If, Assign]
        branch = rebuild.body[2]
        assert [type(s) for s in branch.then_body] == [Delete, New]
        # elif becomes a nested If in the else arm
        (nested,) = branch.else_body
        assert isinstance(nested, If)
        assert [type(s) for s in nested.then_body] == [Return]
        assert [type(s) for s in nested.else_body] == [PureStmt]

    def test_virtual_fixup_and_entry(self):
        program = lowered()
        assert program.tree_types["Inner"].methods["count"].virtual
        assert program.root_type_name == "Node_"
        assert [c.method_name for c in program.entry] == [
            "count",
            "rebuild",
        ]
        assert program.entry[1].args[0].value == 3

    def test_round_trips_through_the_parser(self):
        from repro.frontend import parse_program

        program = lowered()
        printed = print_program(program)
        reparsed = parse_program(
            printed, name="embed-demo", pure_impls={"clamp": clamp}
        )
        assert print_program(reparsed) == printed

    def test_lower_module_collects_by_definition_order(self):
        program = embed.lower_module(__name__, name="embed-demo")
        assert list(program.tree_types) == ["Node_", "Inner", "Leaf"]
        assert list(program.globals) == ["LIMIT"]
        assert list(program.pure_functions) == ["clamp"]

    def test_default_globals_harvests_runtime_values(self):
        assert embed.default_globals(__name__) == {"LIMIT": 10}

    def test_alias_definition(self):
        @repro.schema(abstract=True)
        class Chain:
            Next: "Chain"
            V: int = 0

            @repro.traversal(virtual=True)
            def go(this):
                pass

        @repro.schema
        class ChainInner(Chain):
            @repro.traversal
            def go(this):
                spine: Chain = this.Next
                spine.V = 1
                this.Next.go()

        @repro.schema
        class ChainEnd(Chain):
            pass

        program = embed.lower(
            "alias-demo", classes=[Chain, ChainInner, ChainEnd]
        )
        body = program.tree_types["ChainInner"].methods["go"].body
        assert isinstance(body[0], AliasDef)
        assert body[0].type_name == "Chain"


class TestRejection:
    def test_unknown_name(self):
        @repro.schema(tree=True)
        class Broken:
            X: int = 0

            @repro.traversal
            def go(this):
                this.X = mystery  # noqa: F821

        with pytest.raises(EmbedError, match="unknown name 'mystery'"):
            embed.lower("broken", classes=[Broken])

    def test_receiver_restriction(self):
        @repro.schema(tree=True)
        class Deep:
            Kid: "Deep"

            @repro.traversal
            def go(this):
                this.Kid.Kid.go()

        with pytest.raises(EmbedError, match="rule 7"):
            embed.lower("deep", classes=[Deep])

    def test_chained_comparison_rejected(self):
        @repro.schema(tree=True)
        class Cmp:
            X: int = 0

            @repro.traversal
            def go(this):
                if 0 < this.X < 10:
                    this.X = 0

        with pytest.raises(EmbedError, match="chained comparisons"):
            embed.lower("cmp", classes=[Cmp])

    def test_untyped_local_rejected(self):
        @repro.schema(tree=True)
        class Local:
            X: int = 0

            @repro.traversal
            def go(this):
                t = this.X
                this.X = t

        with pytest.raises(EmbedError, match="unknown name 't'"):
            embed.lower("local", classes=[Local])

    def test_pure_needs_annotations(self):
        with pytest.raises(EmbedError, match="primitive annotation"):
            @repro.pure
            def untyped(a, b):
                return a + b

    def test_opaque_with_tree_field_is_contradiction(self):
        @repro.schema(tree=True)
        class T:
            X: int = 0

        @repro.schema(tree=False)
        class Bad:
            Kid: T

        with pytest.raises((EmbedError, ValidationError)):
            embed.lower("contradiction", classes=[T, Bad])
