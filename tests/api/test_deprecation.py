"""The legacy entry points still work and warn exactly once."""

import warnings

import pytest

from repro.pipeline import CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.service.batching import ExecRequest
from repro.service.executor import BatchExecutor
from repro.workloads.render import (
    DEFAULT_GLOBALS,
    RENDER_PURE_IMPLS,
    RENDER_SOURCE,
    build_document,
    render_workload,
    replicated_pages_spec,
)


def deprecations(caught):
    return [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]


class TestLegacyCompile:
    def test_loose_pure_impls_warn_once_and_work(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = pipeline_compile(
                RENDER_SOURCE,
                pure_impls=dict(RENDER_PURE_IMPLS),
                options=CompileOptions(emit=False),
            )
        assert result.fused is not None
        assert len(deprecations(caught)) == 1

    def test_plain_source_does_not_warn(self):
        # source without impls is the (supported) advanced DSL path
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pipeline_compile(
                RENDER_SOURCE, options=CompileOptions(emit=False)
            )
        assert deprecations(caught) == []

    def test_workload_path_does_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pipeline_compile(
                render_workload(), options=CompileOptions(emit=False)
            )
        assert deprecations(caught) == []

    def test_workload_plus_loose_impls_is_an_error(self):
        with pytest.raises(TypeError, match="inside the Workload"):
            pipeline_compile(
                render_workload(), pure_impls=dict(RENDER_PURE_IMPLS)
            )


class TestLegacyExecRequest:
    def legacy_request(self):
        return ExecRequest(
            source=RENDER_SOURCE,
            trees=[replicated_pages_spec(1)],
            build_tree=build_document,
            globals_map=dict(DEFAULT_GLOBALS),
            pure_impls=dict(RENDER_PURE_IMPLS),
        )

    def test_construction_warns_once_and_still_works(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            request = self.legacy_request()
        assert len(deprecations(caught)) == 1
        assert request.compile_key()  # hashes like it always did

    def test_legacy_request_executes_without_further_warnings(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            request = self.legacy_request()
            with BatchExecutor(workers=1, backend="inline") as executor:
                result = executor.run([request])[0]
        assert result.ok and len(result.trees) == 1
        # the internal plumbing (executor replace, shard compiles) is
        # exempt: exactly the one construction-time warning
        assert len(deprecations(caught)) == 1

    def test_from_workload_does_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            request = ExecRequest.from_workload(
                render_workload(), [replicated_pages_spec(1)]
            )
        assert deprecations(caught) == []
        assert request.build_tree is not None

    def test_missing_pieces_still_raise(self):
        with pytest.raises(TypeError, match="workload or explicit"), \
                warnings.catch_warnings():
            warnings.simplefilter("ignore")
            ExecRequest(source=RENDER_SOURCE, trees=[])

    def test_legacy_and_workload_requests_group_together(self):
        from repro.service.batching import group_requests

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            legacy = self.legacy_request()
        modern = render_workload().request(1, pages=1)
        # same source text + impls on one side, Program on the other:
        # the legacy string request and the embedded-program request
        # hash differently (text vs canonical print), but two modern
        # requests for one workload share an artifact
        again = render_workload().request(1, pages=1)
        groups = group_requests([modern, again, legacy])
        assert len(groups) == 2
        assert groups[0].tree_count == 2
