"""Session.recompile(exec_ahead=True): no module exec on first run().

Unit-assembled modules defer their ``exec`` to first use, like a
disk-restored artifact — good for compile latency, but it means the
first run after an edit pays the exec. The exec-ahead hook spends that
cost inside recompile() (the editor's save-to-run gap) instead.
"""

import repro

# unique sources so the module-artifact layer (keyed on program hash)
# cannot be pre-warmed by other tests in the same process
_SOURCE = """
_tree_ class ExecAheadN {{
    _child_ ExecAheadN* kid;
    int v = 0;
    _traversal_ virtual void tick() {{ this->v = this->v + {delta}; }}
}};
_tree_ class ExecAheadL : public ExecAheadN {{ }};
int main() {{ ExecAheadN* root = ...; root->tick(); }}
"""


def test_recompile_defers_exec_by_default():
    with repro.Session() as session:
        session.compile(_SOURCE.format(delta=1))
        recompiled = session.recompile(_SOURCE.format(delta=1))
    # the unit-assembled modules have not exec'd yet — the first run
    # would pay it
    assert recompiled.result.compiled_fused._namespace is None


def test_exec_ahead_leaves_nothing_for_the_first_run():
    with repro.Session() as session:
        session.compile(_SOURCE.format(delta=2))
        recompiled = session.recompile(
            _SOURCE.format(delta=2), exec_ahead=True
        )
        fused = recompiled.result.compiled_fused
        unfused = recompiled.result.compiled_unfused
        # the exec already happened: the first run() finds a built
        # namespace and pays zero module-exec cost
        assert fused._namespace is not None
        assert unfused._namespace is not None
        namespace_before_run = fused._namespace

        # prove the pre-exec'd module is the one that actually runs
        from repro.runtime import Heap, Node

        program = recompiled.result.program
        heap = Heap(program)
        leaf = Node.new(program, heap, "ExecAheadL")
        root = Node.new(program, heap, "ExecAheadN", kid=leaf)
        fused.run_fused(heap, root)
        assert root.get("v") == 2
        assert fused._namespace is namespace_before_run


def test_exec_ahead_applies_to_edited_recompiles_too():
    with repro.Session() as session:
        session.compile(_SOURCE.format(delta=3))
        edited = session.recompile(
            _SOURCE.format(delta=4), exec_ahead=True
        )
    assert edited.result.compiled_fused._namespace is not None
    assert "+ 4" in edited.result.fused_source
