"""The acceptance pin: the embedded render definition IS the string one.

The embedded frontend is only trustworthy if it is a second *spelling*
of the same program, not a dialect. These tests pin byte-level
equivalence between ``repro.workloads.render.embedded`` and the string
DSL ``RENDER_SOURCE``: same canonical print, same ``source_hash``, and
byte-identical generated Python from two independent cold compiles.
"""

from repro.ir.printer import print_program
from repro.pipeline import CompileOptions, hash_program
from repro.pipeline import compile as pipeline_compile
from repro.workloads.render import (
    DEFAULT_GLOBALS,
    render_embedded_program,
    render_program,
    render_workload,
)
from repro.workloads.render.embedded import RENDER_EMBEDDED_GLOBALS


class TestRenderEquivalence:
    def test_canonical_print_is_identical(self):
        assert print_program(render_embedded_program()) == print_program(
            render_program()
        )

    def test_source_hash_is_identical(self):
        # impls are the *same* callables in both frontends, so the
        # content hashes agree exactly
        assert hash_program(render_embedded_program()) == hash_program(
            render_program()
        )
        assert render_workload().source_hash() == hash_program(
            render_program()
        )

    def test_field_defaults_survive_lowering(self):
        embedded, parsed = render_embedded_program(), render_program()
        for name, tree_type in parsed.tree_types.items():
            assert (
                embedded.tree_types[name].data_defaults
                == tree_type.data_defaults
            )

    def test_cold_compiles_emit_identical_modules(self):
        # two genuinely independent pipeline runs (the cache is
        # bypassed), so equality cannot come from one serving the other
        options = CompileOptions(use_cache=False)
        from_embedded = pipeline_compile(
            render_embedded_program(), options=options
        )
        from_string = pipeline_compile(render_program(), options=options)
        assert from_embedded.source_hash == from_string.source_hash
        assert from_embedded.fused_source == from_string.fused_source
        assert from_embedded.unfused_source == from_string.unfused_source

    def test_workload_globals_match_legacy_defaults(self):
        assert RENDER_EMBEDDED_GLOBALS == DEFAULT_GLOBALS
        assert dict(render_workload().globals_map) == DEFAULT_GLOBALS

    def test_embedded_workload_runs_the_layout(self):
        import repro

        with repro.Session(workers=1, backend="inline") as session:
            outcome = session.compile(render_workload()).run(
                trees=2, pages=2
            )
        assert len(outcome) == 2
        # identical specs -> identical layouts
        first, second = (s["snapshot_sha"] for s in outcome.summaries)
        assert first == second
