"""ForestPool unit tests: round-trips, accessors, clone/pickle value
semantics, integer type tags."""

import pickle

import pytest

from repro.errors import RuntimeFailure
from repro.layout import ForestPool, column_names
from repro.runtime.heap import Heap
from repro.runtime.node import Node
from repro.runtime.values import ObjectValue
from repro.workloads.render import render_workload


@pytest.fixture(scope="module")
def render():
    w = render_workload()
    program = w.source
    heap = Heap(program)
    root = w.build_tree(program, heap, w.make_spec(pages=2))
    return program, heap, root


class TestConstruction:
    def test_columns_cover_every_field_name(self, render):
        program, _, root = render
        pool = ForestPool.from_tree(program, root)
        assert sorted(pool.columns) == column_names(program)
        for column in pool.columns.values():
            assert len(column) == len(pool)

    def test_rows_cover_every_node(self, render):
        program, _, root = render
        pool = ForestPool.from_tree(program, root)
        assert len(pool) == root.count_nodes(program)
        assert pool.roots == [0]  # DFS preorder: root first

    def test_tags_are_indices_into_sorted_type_table(self, render):
        program, _, root = render
        pool = ForestPool.from_tree(program, root)
        assert pool.type_table == sorted(program.tree_types)
        assert all(isinstance(tag, int) for tag in pool.tags)
        assert pool.type_name(0) == root.type_name
        assert pool.type_id(root.type_name) == pool.tags[0]

    def test_from_forest_keeps_trees_apart(self, render):
        program, heap, root = render
        w = render_workload()
        other = w.build_tree(program, heap, w.make_spec(pages=1))
        pool = ForestPool.from_forest(program, [root, other])
        assert len(pool.roots) == 2
        assert pool.snapshot(pool.roots[0]) == root.snapshot(program)
        assert pool.snapshot(pool.roots[1]) == other.snapshot(program)

    def test_new_rejects_unknown_and_abstract_types(self, render):
        program, _, root = render
        pool = ForestPool.from_tree(program, root)
        with pytest.raises(RuntimeFailure):
            pool.new("NoSuchType")
        abstract = [
            name
            for name, t in program.tree_types.items()
            if t.abstract
        ]
        if abstract:
            with pytest.raises(RuntimeFailure):
                pool.new(abstract[0])

    def test_new_appends_default_row(self, render):
        program, _, root = render
        pool = ForestPool.from_tree(program, root)
        before = len(pool)
        index = pool.new(root.type_name)
        assert index == before
        assert len(pool) == before + 1
        assert pool.nodes[index] is None
        assert pool.type_name(index) == root.type_name


class TestRoundTrips:
    def test_snapshot_matches_node_snapshot(self, render):
        program, _, root = render
        pool = ForestPool.from_tree(program, root)
        assert pool.snapshot(pool.roots[0]) == root.snapshot(program)

    def test_to_tree_rebuilds_equal_tree(self, render):
        program, _, root = render
        pool = ForestPool.from_tree(program, root)
        heap = Heap(program)
        rebuilt = pool.to_tree(heap, pool.roots[0])
        assert rebuilt is not root
        assert rebuilt.snapshot(program) == root.snapshot(program)

    def test_write_back_restores_original_nodes(self, render):
        program, heap, _ = render
        w = render_workload()
        scratch = Heap(program)
        root = w.build_tree(program, scratch, w.make_spec(pages=1))
        reference = root.snapshot(program)
        pool = ForestPool.from_tree(program, root)
        nodes = pool.write_back(scratch)
        assert nodes[pool.roots[0]] is root
        assert root.snapshot(program) == reference

    def test_write_back_materializes_pool_allocated_rows(self, render):
        program, _, _ = render
        w = render_workload()
        heap = Heap(program)
        root = w.build_tree(program, heap, w.make_spec(pages=1))
        pool = ForestPool.from_tree(program, root)
        index = pool.new(root.type_name)
        before = heap.footprint_bytes
        nodes = pool.write_back(heap)
        assert isinstance(nodes[index], Node)
        assert heap.footprint_bytes > before


class TestValueSemantics:
    def test_clone_shares_no_mutable_state(self, render):
        program, _, root = render
        pool = ForestPool.from_tree(program, root)
        reference = pool.snapshot(pool.roots[0])
        twin = pool.clone()
        assert twin.snapshot(twin.roots[0]) == reference
        # mutate every kind of column slot in the clone
        for name, column in twin.columns.items():
            for i, value in enumerate(column):
                if isinstance(value, ObjectValue):
                    value.members = {
                        k: "mutated" for k in value.members
                    }
                elif isinstance(value, (int, float)):
                    column[i] = value + 1
        twin.tags[0] = (twin.tags[0] + 1) % len(twin.type_table)
        assert pool.snapshot(pool.roots[0]) == reference

    def test_clone_drops_backing_nodes(self, render):
        program, _, root = render
        pool = ForestPool.from_tree(program, root)
        twin = pool.clone()
        assert twin.nodes == [None] * len(pool)

    def test_pickle_round_trip_is_a_value(self, render):
        program, _, root = render
        pool = ForestPool.from_tree(program, root)
        restored = pickle.loads(pickle.dumps(pool))
        assert restored.nodes == [None] * len(pool)
        assert restored.snapshot(restored.roots[0]) == pool.snapshot(
            pool.roots[0]
        )


class TestAccessors:
    def test_make_indexer_and_writer(self, render):
        program, _, root = render
        pool = ForestPool.from_tree(program, root).clone()
        name = column_names(program)[0]
        read = pool.make_indexer(name)
        write = pool.make_writer(name)
        original = read(0)
        write(0, "sentinel")
        assert read(0) == "sentinel"
        assert pool.columns[name][0] == "sentinel"
        write(0, original)

    def test_deep_chain_round_trips_iteratively(self):
        # pools must survive trees deeper than the recursion limit too
        program = render_workload().source
        heap = Heap(program)
        type_name, child = _chain_field(program)
        root = Node.new(program, heap, type_name)
        tip = root
        for _ in range(2500 - 1):
            nxt = Node.new(program, heap, type_name)
            tip.set(child, nxt)
            tip = nxt
        pool = ForestPool.from_tree(program, root)
        assert len(pool) == 2500
        reference = root.snapshot(program)
        _assert_deep_equal(pool.snapshot(pool.roots[0]), reference, child)
        rebuilt = pool.to_tree(Heap(program), pool.roots[0])
        _assert_deep_equal(rebuilt.snapshot(program), reference, child)


def _assert_deep_equal(left, right, child):
    # `==` on a 2500-deep nested dict itself hits the recursion limit,
    # so walk the chain with an explicit stack like the code under test
    depth = 0
    while left is not None or right is not None:
        assert left is not None and right is not None, depth
        left_flat = {k: v for k, v in left.items() if k != child}
        right_flat = {k: v for k, v in right.items() if k != child}
        assert left_flat == right_flat, depth
        left, right = left[child], right[child]
        depth += 1
    assert depth == 2500


def _chain_field(program):
    for type_name in sorted(program.tree_types):
        if program.tree_types[type_name].abstract:
            continue
        for name, field in program.fields_of(type_name).items():
            if field.is_child and type_name in program.concrete_subtypes(
                field.type_name
            ):
                return type_name, name
    raise AssertionError("schema has no self-chaining type")
