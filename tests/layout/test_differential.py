"""Differential tests: object-graph vs pooled backends must agree.

Every workload, fused and unfused, runs once per layout on identical
trees; the full execution records — tree snapshot, final globals (read
from the returned :class:`RuntimeContext`, which is where compiled runs
actually expose them), and derived write-set — are diffed through the
shared :func:`repro.interp.diff_report` helper, so a failure names the
first diverging node path/field/global instead of dumping two hashes. A
separate test pins the storage contract: pooled and object artifacts
never collide in any cache tier.
"""

import dataclasses

import pytest

from repro.interp import diff_report, make_record
from repro.pipeline import CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.runtime.heap import Heap
from repro.workloads.astlang import astlang_workload
from repro.workloads.fmm import fmm_workload
from repro.workloads.kdtree import kdtree_workload
from repro.workloads.render import render_workload

CASES = [
    ("render", render_workload, {"pages": 2}),
    ("astlang", astlang_workload, {"functions": 6}),
    ("kdtree", kdtree_workload, {"depth": 4}),
    ("fmm", fmm_workload, {"particles": 48}),
]


def _compiled(workload, layout):
    result = pipeline_compile(
        workload, options=CompileOptions(layout=layout)
    )
    return result


def _run(workload, compiled_result, spec_kwargs, fused, label):
    program = compiled_result.program
    heap = Heap(program)
    root = workload.build_tree(
        program, heap, workload.make_spec(**spec_kwargs)
    )
    before = root.snapshot(program)
    globals_map = dict(workload.globals_map or {})
    module = (
        compiled_result.compiled_fused
        if fused
        else compiled_result.compiled_unfused
    )
    runner = module.run_fused if fused else module.run_entry
    context = runner(heap, root, globals_map)
    return make_record(
        label,
        before,
        root.snapshot(program),
        globals_map,
        context.globals,
    )


@pytest.mark.parametrize(
    "name,factory,spec_kwargs",
    CASES,
    ids=[case[0] for case in CASES],
)
@pytest.mark.parametrize("fused", [True, False], ids=["fused", "unfused"])
class TestLayoutsAgree:
    def test_results_and_writes_match(
        self, name, factory, spec_kwargs, fused
    ):
        workload = factory()
        object_result = _compiled(workload, "object")
        pooled_result = _compiled(workload, "pooled")
        object_record = _run(
            workload, object_result, spec_kwargs, fused, "object"
        )
        pooled_record = _run(
            workload, pooled_result, spec_kwargs, fused, "pooled"
        )
        # the record covers every field of every node plus the final
        # globals and the derived write-set; on divergence the report
        # names the first differing path
        report = diff_report(object_record, pooled_record)
        assert report is None, report
        assert object_record.write_set  # the traversals wrote something


class TestArtifactsNeverCollide:
    def test_layouts_use_disjoint_cache_keys(self, tmp_path):
        workload = render_workload()
        base = CompileOptions(cache_dir=str(tmp_path))
        object_cold = pipeline_compile(workload, options=base)
        pooled_cold = pipeline_compile(
            workload,
            options=dataclasses.replace(base, layout="pooled"),
        )
        # a warm object store must not satisfy the pooled compile
        assert not pooled_cold.cache_hit
        assert pooled_cold.fused_source != object_cold.fused_source
        assert "bind_fused" in pooled_cold.fused_source
        assert "bind_fused" not in object_cold.fused_source
        # warm recompiles hit per layout and stay byte-stable
        object_warm = pipeline_compile(workload, options=base)
        pooled_warm = pipeline_compile(
            workload,
            options=dataclasses.replace(base, layout="pooled"),
        )
        assert object_warm.cache_hit
        assert pooled_warm.cache_hit
        assert object_warm.fused_source == object_cold.fused_source
        assert pooled_warm.fused_source == pooled_cold.fused_source

    def test_unknown_layout_fails_before_compiling(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown tree layout"):
            pipeline_compile(
                render_workload(),
                options=CompileOptions(layout="columnar"),
            )
