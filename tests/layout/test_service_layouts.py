"""Service-level layout plumbing: per-request layout selection, the
service-wide default, and the /stats ``layouts`` counters."""

from repro.service.api import TraversalService


def _submit_and_wait(service, **kwargs):
    request_id = service.submit_workload(
        "render", trees=2, size=1, **kwargs
    )
    result = service.result(request_id, timeout=60)
    assert result.ok, result.error
    return [t.summary for t in result.trees]


class TestLayoutCounters:
    def test_counts_follow_explicit_request_layouts(self):
        with TraversalService(workers=1, backend="inline") as service:
            object_summaries = _submit_and_wait(service)
            pooled_summaries = _submit_and_wait(service, layout="pooled")
            assert pooled_summaries == object_summaries
            assert service.stats()["layouts"] == {
                "object": 1,
                "pooled": 1,
            }

    def test_service_default_fills_unspecified_requests(self):
        with TraversalService(workers=1, backend="inline") as baseline:
            expected = _submit_and_wait(baseline)
        with TraversalService(
            workers=1, backend="inline", layout="pooled"
        ) as service:
            # no layout in the request: the service default applies —
            # and the pooled run still produces object-identical results
            assert _submit_and_wait(service) == expected
            _submit_and_wait(service, layout="pooled")
            assert service.stats()["layouts"] == {"pooled": 2}
