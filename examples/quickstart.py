"""Quickstart: write two traversals, fuse them, run both, compare.

This walks the paper's running example (Fig. 2): a render-tree fragment
whose elements compute widths and heights in two passes. Grafter fuses
the passes into one traversal — same results, half the node visits.

Compilation goes through the staged pipeline (`repro.pipeline.compile`):
one call parses, validates, analyzes, fuses and schedules, with per-pass
timings — and a second compile of the same source is a cache hit.

Run:  python examples/quickstart.py
"""

from repro import pipeline
from repro.fusion.fused_ir import print_fused_unit
from repro.pipeline import CompileOptions
from repro.runtime import Heap, Interpreter, Node
from repro.runtime.values import ObjectValue

SOURCE = """
int CHAR_WIDTH;

class String { int Length; };

_abstract_ _tree_ class Element {
    _child_ Element* Next;
    int Height = 0;
    int Width = 0;
    int MaxHeight = 0;
    int TotalWidth = 0;
    _traversal_ virtual void computeWidth() {}
    _traversal_ virtual void computeHeight() {}
};

_tree_ class TextBox : public Element {
    String Text;
    _traversal_ void computeWidth() {
        this->Next->computeWidth();
        this->Width = this->Text.Length;
        this->TotalWidth = this->Next->Width + this->Width;
    }
    _traversal_ void computeHeight() {
        this->Next->computeHeight();
        this->Height = this->Text.Length * (this->Width / CHAR_WIDTH) + 1;
        this->MaxHeight = this->Height;
        if (this->Next->Height > this->Height) {
            this->MaxHeight = this->Next->Height;
        }
    }
};

_tree_ class End : public Element { };

int main() {
    Element* ElementsList = ...;
    ElementsList->computeWidth();
    ElementsList->computeHeight();
}
"""


def build_chain(program, heap, lengths):
    """A TextBox sibling chain with the given text lengths."""
    node = Node.new(program, heap, "End")
    for length in reversed(lengths):
        node = Node.new(
            program, heap, "TextBox",
            Text=ObjectValue("String", {"Length": length}),
            Next=node,
        )
    return node


def run(program, root, fused=None):
    interp = Interpreter(program, Heap(program))
    interp.globals["CHAR_WIDTH"] = 2
    # note: the heap given to the interpreter only matters for layouts;
    # the tree carries its own addresses
    if fused is None:
        interp.run_entry(root)
    else:
        interp.run_fused(fused, root)
    return interp.stats


def main():
    # 1. one compile() call: parse → validate → analyze → fuse → schedule
    result = pipeline.compile(
        SOURCE, name="quickstart", options=CompileOptions(emit=False)
    )
    program = result.program
    print(f"parsed {len(program.tree_types)} tree types, "
          f"{sum(1 for _ in program.all_methods())} traversal methods")
    print()
    print(result.timings_report())

    # 2. the fused form: computeWidth + computeHeight became one traversal
    fused = result.fused
    print(f"\nsynthesized {fused.unit_count} fused traversal functions; "
          "the TextBox unit:")
    unit = fused.units[("TextBox::computeWidth", "TextBox::computeHeight")]
    print(print_fused_unit(unit))

    # 3. run unfused and fused on identical inputs
    heap_a = Heap(program)
    root_a = build_chain(program, heap_a, [5, 7, 3, 9])
    stats_a = run(program, root_a)

    heap_b = Heap(program)
    root_b = build_chain(program, heap_b, [5, 7, 3, 9])
    stats_b = run(program, root_b, fused=fused)

    # 4. identical results, fewer visits
    assert root_a.snapshot(program) == root_b.snapshot(program)
    print(f"\nunfused: {stats_a.node_visits} node visits, "
          f"{stats_a.instructions} instructions")
    print(f"fused:   {stats_b.node_visits} node visits, "
          f"{stats_b.instructions} instructions")
    print(f"visit ratio: {stats_b.node_visits / stats_a.node_visits:.2f} "
          "(two traversals -> one)")
    print(f"\nroot TotalWidth = {root_a.get('TotalWidth')}, "
          f"MaxHeight = {root_a.get('MaxHeight')}")


if __name__ == "__main__":
    main()
