"""Quickstart: write two traversals as typed Python, fuse them, run both.

This walks the paper's running example (Fig. 2): a render-tree fragment
whose elements compute widths and heights in two passes. The traversals
are written with the *embedded* API — ``@repro.schema`` classes and
``@repro.traversal`` methods that lower to the same IR (and the same
content hashes) as the Grafter string DSL — then bundled into a
:class:`repro.Workload` and compiled/run through one
:class:`repro.Session`. Grafter fuses the passes into one traversal —
same results, half the node visits.

Run:  python examples/quickstart.py
"""

import os

import repro
from repro.fusion.fused_ir import print_fused_unit
from repro.runtime import Heap, Interpreter, Node
from repro.runtime.values import ObjectValue

# --------------------------------------------------------- the program

CHAR_WIDTH = repro.Global(int, 2)


@repro.schema
class String:
    Length: int


@repro.schema(abstract=True)
class Element:
    Next: "Element"
    Height: int = 0
    Width: int = 0
    MaxHeight: int = 0
    TotalWidth: int = 0

    @repro.traversal(virtual=True)
    def computeWidth(this):
        pass

    @repro.traversal(virtual=True)
    def computeHeight(this):
        pass


@repro.schema
class TextBox(Element):
    Text: String

    @repro.traversal
    def computeWidth(this):
        this.Next.computeWidth()
        this.Width = this.Text.Length
        this.TotalWidth = this.Next.Width + this.Width

    @repro.traversal
    def computeHeight(this):
        this.Next.computeHeight()
        this.Height = this.Text.Length * (this.Width // CHAR_WIDTH) + 1
        this.MaxHeight = this.Height
        if this.Next.Height > this.Height:
            this.MaxHeight = this.Next.Height


@repro.schema
class End(Element):
    pass


@repro.entry(Element)
def entry(root):
    root.computeWidth()
    root.computeHeight()


# ----------------------------------------------------------- the input


def build_chain(program, heap, lengths):
    """A TextBox sibling chain with the given text lengths."""
    node = Node.new(program, heap, "End")
    for length in reversed(lengths):
        node = Node.new(
            program, heap, "TextBox",
            Text=ObjectValue("String", {"Length": length}),
            Next=node,
        )
    return node


def quickstart_workload() -> repro.Workload:
    """Everything the compiler and runtime need, as one object."""
    return repro.Workload.from_program(
        repro.lower_module(__name__, name="quickstart"),
        build_chain,
        globals_map=repro.default_globals(__name__),
    )


def run(program, root, fused=None):
    interp = Interpreter(program, Heap(program))
    interp.globals["CHAR_WIDTH"] = 2
    # note: the heap given to the interpreter only matters for layouts;
    # the tree carries its own addresses
    if fused is None:
        interp.run_entry(root)
    else:
        interp.run_fused(fused, root)
    return interp.stats


def main():
    # 1. one Session.compile() call: lower the embedded definitions,
    #    then parse-free staged compilation (validate → analyze → fuse →
    #    schedule), with per-pass timings — a second compile of the
    #    same program is a cache hit
    workload = quickstart_workload()
    with repro.Session(cache_dir=os.environ.get("REPRO_CACHE_DIR")) as session:
        compiled = session.compile(workload, emit=False)
        program = compiled.result.program
        print(f"parsed {len(program.tree_types)} tree types, "
              f"{sum(1 for _ in program.all_methods())} traversal methods")
        print()
        print(compiled.result.timings_report())

        # 2. the fused form: computeWidth + computeHeight became one
        fused = compiled.fused
        print(f"\nsynthesized {fused.unit_count} fused traversal functions; "
              "the TextBox unit:")
        unit = fused.units[("TextBox::computeWidth", "TextBox::computeHeight")]
        print(print_fused_unit(unit))

        # 3. run unfused and fused on identical inputs
        heap_a = Heap(program)
        root_a = build_chain(program, heap_a, [5, 7, 3, 9])
        stats_a = run(program, root_a)

        heap_b = Heap(program)
        root_b = build_chain(program, heap_b, [5, 7, 3, 9])
        stats_b = run(program, root_b, fused=fused)

        # 4. identical results, fewer visits
        assert root_a.snapshot(program) == root_b.snapshot(program)
        print(f"\nunfused: {stats_a.node_visits} node visits, "
              f"{stats_a.instructions} instructions")
        print(f"fused:   {stats_b.node_visits} node visits, "
              f"{stats_b.instructions} instructions")
        print(f"visit ratio: {stats_b.node_visits / stats_a.node_visits:.2f} "
              "(two traversals -> one)")
        print(f"\nroot TotalWidth = {root_a.get('TotalWidth')}, "
              f"MaxHeight = {root_a.get('MaxHeight')}")

        # 5. the service path: the same workload through the session's
        #    batch executor (what `repro serve` does per request)
        outcome = session.run(workload, [[5, 7, 3, 9]])
        print(f"executor ran {len(outcome)} tree in "
              f"{outcome.wall_seconds * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
