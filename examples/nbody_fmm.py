"""N-body far-field evaluation: the paper's §5.4 FMM case study.

Distributes particles in a 1D domain, builds the spatial tree, and runs
the multipole / local-expansion / potential traversals. The two downward
passes fuse into one; the upward pass provably cannot join them (its
output feeds the fused pair at every node).

The FMM program arrives as a :class:`repro.Workload` bundle measured
through :func:`repro.bench.runner.compare_workload` and compiled by a
:class:`repro.Session`.

Run:  python examples/nbody_fmm.py [particles]
"""

import os
import sys

import repro
from repro.bench.runner import compare_workload
from repro.runtime import Heap, Interpreter
from repro.workloads.fmm import fmm_oracle, fmm_workload


def main():
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    workload = fmm_workload()
    particles = workload.spec(particles=count)

    with repro.Session(cache_dir=os.environ.get("REPRO_CACHE_DIR")) as session:
        compiled = session.compile(workload, emit=False)
        options = session.options
    program, fused_program = compiled.result.program, compiled.fused

    comparison = compare_workload(
        "nbody-fmm", workload, particles, cache_scale=64, options=options
    )
    unfused, fused = comparison.unfused, comparison.fused

    print(f"{count} particles, tree of "
          f"{unfused.tree_bytes >> 10}KB")
    print("\nfused traversal sets:")
    for key in sorted(fused_program.units):
        print("  " + " + ".join(key))

    print(f"\n{'':>14}  {'unfused':>12}  {'fused':>12}  {'ratio':>6}")
    for label, a, b in [
        ("node visits", unfused.node_visits, fused.node_visits),
        ("instructions", unfused.instructions, fused.instructions),
        ("L2 misses", unfused.misses["L2"], fused.misses["L2"]),
        ("cycles", unfused.modeled_cycles, fused.modeled_cycles),
    ]:
        print(f"{label:>14}  {a:>12}  {b:>12}  {b / a:>6.2f}")

    # correctness: total potential matches the reference recurrences
    heap = Heap(program)
    root = workload.build_tree(program, heap, particles)
    interp = Interpreter(program, heap)
    interp.globals.update(workload.globals_map)
    interp.run_fused(fused_program, root)
    expected = fmm_oracle(program, root)
    want = expected[id(root)]["Potential"]
    got = root.get("Potential")
    print(f"\ntotal potential = {got:.6f} (reference {want:.6f})")
    assert abs(got - want) < 1e-6


if __name__ == "__main__":
    main()
