"""N-body far-field evaluation: the paper's §5.4 FMM case study.

Distributes particles in a 1D domain, builds the spatial tree, and runs
the multipole / local-expansion / potential traversals. The two downward
passes fuse into one; the upward pass provably cannot join them (its
output feeds the fused pair at every node).

Run:  python examples/nbody_fmm.py [particles]
"""

import sys

from repro.bench.metrics import measure_run
from repro.bench.runner import fused_for
from repro.runtime import Heap, Interpreter
from repro.workloads.fmm import (
    FMM_DEFAULT_GLOBALS,
    build_fmm_tree,
    fmm_oracle,
    fmm_program,
    random_particles,
)


def main():
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    program = fmm_program()
    particles = random_particles(count)

    unfused = measure_run(
        program, lambda p, h: build_fmm_tree(p, h, particles),
        FMM_DEFAULT_GLOBALS, cache_scale=64,
    )
    fused_program = fused_for(program)
    fused = measure_run(
        program, lambda p, h: build_fmm_tree(p, h, particles),
        FMM_DEFAULT_GLOBALS, fused=fused_program, cache_scale=64,
    )

    print(f"{count} particles, tree of "
          f"{unfused.tree_bytes >> 10}KB")
    print("\nfused traversal sets:")
    for key in sorted(fused_program.units):
        print("  " + " + ".join(key))

    print(f"\n{'':>14}  {'unfused':>12}  {'fused':>12}  {'ratio':>6}")
    for label, a, b in [
        ("node visits", unfused.node_visits, fused.node_visits),
        ("instructions", unfused.instructions, fused.instructions),
        ("L2 misses", unfused.misses["L2"], fused.misses["L2"]),
        ("cycles", unfused.modeled_cycles, fused.modeled_cycles),
    ]:
        print(f"{label:>14}  {a:>12}  {b:>12}  {b / a:>6.2f}")

    # correctness: total potential matches the reference recurrences
    heap = Heap(program)
    root = build_fmm_tree(program, heap, particles)
    interp = Interpreter(program, heap)
    interp.globals.update(FMM_DEFAULT_GLOBALS)
    interp.run_fused(fused_program, root)
    expected = fmm_oracle(program, root)
    want = expected[id(root)]["Potential"]
    got = root.get("Potential")
    print(f"\ntotal potential = {got:.6f} (reference {want:.6f})")
    assert abs(got - want) < 1e-6


if __name__ == "__main__":
    main()
