"""Document layout: the paper's §5.1 case study as an application.

Builds a multi-page document (headings, images, buttons, nested boxes),
runs the five layout passes unfused and fused — with the cache simulator
configured like the paper's Xeon — and reports the four metrics of the
evaluation, then prints a small ASCII rendering of the first page to show
the layout actually computed something sensible.

The render program here is the Python-*embedded* definition
(``repro.workloads.render.embedded``), reached through its
:class:`repro.Workload` bundle and a :class:`repro.Session` — it
compiles to byte-identical fused code as the string DSL.

Run:  python examples/document_layout.py [pages]
"""

import os
import sys

import repro
from repro.bench.runner import compare_workload
from repro.workloads.render import render_workload, replicated_pages_spec
from repro.runtime import Heap, Interpreter


def render_page_ascii(program, document, width=64, height=18):
    """Draw element boxes of the first page into a character grid."""
    page = document.get("Pages").get("Content")
    page_w = max(page.get("Width"), 1)
    page_h = max(page.get("Height"), 1)
    grid = [[" "] * width for _ in range(height)]

    def plot(node):
        for field_name, field in program.fields_of(node.type_name).items():
            if not field.is_child:
                continue
            child = node.fields[field_name]
            if child is not None:
                plot(child)
        if node.type_name in ("TextBox", "Image", "Button", "VerticalContainer"):
            x0 = node.get("PosX") * width // (page_w + 1)
            y0 = node.get("PosY") * height // (page_h + 1)
            w = max(1, node.get("Width") * width // (page_w + 1))
            h = max(1, node.get("Height") * height // (page_h + 1))
            mark = node.type_name[0].lower()
            for y in range(y0, min(y0 + h, height)):
                for x in range(x0, min(x0 + w, width)):
                    grid[y][x] = mark
    plot(page)
    border = "+" + "-" * width + "+"
    return "\n".join([border] + ["|" + "".join(row) + "|" for row in grid] + [border])


def main():
    pages = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    workload = render_workload()
    spec = replicated_pages_spec(pages)

    print(f"document: {pages} pages "
          f"({spec.count_elements()} leaf elements)")

    with repro.Session(cache_dir=os.environ.get("REPRO_CACHE_DIR")) as session:
        compiled = session.compile(workload, emit=False)
        program = compiled.result.program
        print("passes:", ", ".join(c.method_name for c in program.entry))

        comparison = compare_workload(
            "document-layout", workload, spec,
            cache_scale=64, options=session.options,
        )
        unfused, fused = comparison.unfused, comparison.fused

        print(f"\n{'':>14}  {'unfused':>12}  {'fused':>12}  {'ratio':>6}")
        for label, a, b in [
            ("node visits", unfused.node_visits, fused.node_visits),
            ("instructions", unfused.instructions, fused.instructions),
            ("L2 misses", unfused.misses["L2"], fused.misses["L2"]),
            ("L3 misses", unfused.misses["L3"], fused.misses["L3"]),
            ("cycles", unfused.modeled_cycles, fused.modeled_cycles),
        ]:
            print(f"{label:>14}  {a:>12}  {b:>12}  {b / a:>6.2f}")

        # draw the first page from a fresh fused run
        heap = Heap(program)
        document = workload.build_tree(program, heap, spec)
        interp = Interpreter(program, heap)
        interp.globals.update(workload.globals_map)
        interp.run_fused(compiled.fused, document)
        print("\nfirst page (t=text, i=image, b=button, v=nested box):")
        print(render_page_ascii(program, document))


if __name__ == "__main__":
    main()
