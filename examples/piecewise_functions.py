"""Solving with piecewise functions: the paper's §5.3 case study.

Represents a function as a kd-tree of cubic segments and evaluates the
three Table 6 equations, each a different schedule of traversals. Shows
why automatic fusion matters here: every equation gets its own fused
traversal set, which nobody would write by hand.

Each equation becomes its own :class:`repro.Workload` (same classes,
different entry schedule) compiled and measured through one
:class:`repro.Session`.

Run:  python examples/piecewise_functions.py
"""

import os

import repro
from repro.bench.runner import compare_workload
from repro.runtime import Heap, Interpreter
from repro.workloads.kdtree import (
    EQ1_SCHEDULE,
    EQ2_SCHEDULE,
    EQ3_SCHEDULE,
    PiecewiseOracle,
    kdtree_workload,
    leaf_segments,
)

EQUATIONS = [
    ("x^4 (f''(x))^2 + sum_i x^i", EQ1_SCHEDULE),
    ("f^(5)(x) at x=0", EQ2_SCHEDULE),
    ("integral x^3 (f+.5)^2 u(0)", EQ3_SCHEDULE),
]


def main():
    depth = 8
    print(f"piecewise function: balanced kd-tree, {2**depth} cubic segments\n")
    session = repro.Session(cache_dir=os.environ.get("REPRO_CACHE_DIR"))
    for label, schedule in EQUATIONS:
        workload = kdtree_workload(schedule, name=label)
        compiled = session.compile(workload, emit=False)
        program, fused = compiled.result.program, compiled.fused

        spec = workload.spec(depth=depth)
        comparison = compare_workload(
            label, workload, spec, options=session.options
        )
        unfused, fused_m = comparison.unfused, comparison.fused

        # run once more on the same input to pull out the numeric
        # answer + oracle check
        heap = Heap(program)
        function = workload.build_tree(program, heap, spec)
        oracle = PiecewiseOracle(leaf_segments(program, function))
        expected = oracle.apply_schedule(schedule)
        interp = Interpreter(program, heap)
        interp.globals.update(workload.globals_map)
        interp.run_fused(fused, function)

        print(f"equation: {label}")
        print(f"  schedule: {len(schedule)} traversals "
              f"({', '.join(m for m, _ in schedule[:4])}...)")
        print(f"  fused into {fused.unit_count} traversal functions")
        print(f"  node visits {unfused.node_visits} -> {fused_m.node_visits} "
              f"({fused_m.node_visits / unfused.node_visits:.2f}x)")
        if "integral" in expected:
            print(f"  integral = {function.get('Integral'):.6f} "
                  f"(oracle {expected['integral']:.6f})")
        if "value" in expected:
            print(f"  value    = {function.get('Value'):.6f} "
                  f"(oracle {expected['value']:.6f})")
        print()


if __name__ == "__main__":
    main()
