"""A fused compiler frontend: the paper's §5.2 case study as an application.

Builds an AST for a small imperative program, pretty-prints it, runs the
six optimization passes (desugaring, two-traversal constant propagation,
folding, dead-branch removal) through the *fused* pipeline, and shows the
optimized program plus the fusion statistics.

The program reaches the compiler through its :class:`repro.Workload`
bundle and a :class:`repro.Session` (the unified workload API).

Run:  python examples/ast_optimizer.py
"""

import os

import repro
from repro.runtime import Heap, Interpreter
from repro.workloads.astlang import (
    AstBuilder,
    K_ADD,
    K_CONST,
    K_DECR,
    K_INCR,
    K_MUL,
    K_SUB,
    K_VAR,
    S_ASSIGN,
    astlang_workload,
    evaluate_program,
)

_OPS = {K_ADD: "+", K_SUB: "-", K_MUL: "*"}


def show_expr(node) -> str:
    kind = node.get("kind")
    if kind == K_CONST:
        return str(node.get("value"))
    if kind == K_VAR:
        return f"v{node.get('varId')}"
    if kind == K_INCR:
        return f"{show_expr(node.get('Operand'))}++"
    if kind == K_DECR:
        return f"{show_expr(node.get('Operand'))}--"
    return (f"({show_expr(node.get('Left'))} {_OPS[kind]} "
            f"{show_expr(node.get('Right'))})")


def show_stmts(stmt_list, indent="  ") -> list[str]:
    lines = []
    node = stmt_list
    while node.type_name == "StmtListInner":
        stmt = node.get("S")
        if stmt.get("kind") == S_ASSIGN:
            lines.append(f"{indent}v{stmt.get('varId')} = "
                         f"{show_expr(stmt.get('Rhs'))};")
        else:
            lines.append(f"{indent}if ({show_expr(stmt.get('Cond'))}) {{")
            lines.extend(show_stmts(stmt.get("Then"), indent + "  "))
            lines.append(f"{indent}}} else {{")
            lines.extend(show_stmts(stmt.get("Else"), indent + "  "))
            lines.append(f"{indent}}}")
        node = node.get("Next")
    return lines


def show_program(root) -> str:
    lines = []
    fn_list = root.get("Functions")
    index = 0
    while fn_list.type_name == "FunctionListInner":
        lines.append(f"fn f{index}() {{")
        lines.extend(show_stmts(fn_list.get("Fn").get("Body")))
        lines.append("}")
        fn_list = fn_list.get("Next")
        index += 1
    return "\n".join(lines)


def main():
    workload = astlang_workload()
    with repro.Session(cache_dir=os.environ.get("REPRO_CACHE_DIR")) as session:
        compiled = session.compile(workload, emit=False)
    program = compiled.result.program
    heap = Heap(program)
    b = AstBuilder(program, heap)

    # v0 = 3; v1 = v0 + 4; v2 = v1++; if (v0 - v0) {...} else {...}; v3 = v2 * 2
    root = b.program_node([
        b.function([
            b.assign(0, b.const(3)),
            b.assign(1, b.add(b.var(0), b.const(4))),
            b.assign(2, b.incr(1)),
            b.if_stmt(
                b.sub(b.var(0), b.var(0)),
                [b.assign(3, b.const(111))],
                [b.assign(3, b.mul(b.var(2), b.const(2)))],
            ),
            b.assign(4, b.add(b.var(3), b.decr(2))),
        ])
    ])

    print("before optimization:")
    print(show_program(root))
    meaning_before = evaluate_program(program, root)

    fused = compiled.fused
    interp = Interpreter(program, heap)
    interp.run_fused(fused, root)

    print("\nafter the fused optimization pipeline:")
    print(show_program(root))

    meaning_after = evaluate_program(program, root)
    assert meaning_before == meaning_after, "optimization changed semantics!"
    print("\nsemantics preserved:", meaning_after[0])
    print(f"fused pipeline: {fused.unit_count} synthesized traversals, "
          f"{interp.stats.node_visits} node visits, "
          f"{interp.stats.truncations} dynamic truncations")


if __name__ == "__main__":
    main()
