"""Traversal-service throughput: batching and persistent warm starts.

Two claims, recorded in ``benchmark_results/service_throughput.txt``:

1. **Batching wins.** Executing a 64-tree render forest as one batched
   request (grouped by artifact, sharded across ≥2 workers) beats the
   same 64 trees submitted to the *same service* one request at a time
   — each single-tree request pays the full per-request service cost
   (wave formation, grouping/key hashing, artifact resolution, pool
   dispatch, metrics) that the batch pays once. The executor is held
   constant; only the submission pattern varies. On a single-core host
   that amortization *is* the win; with real cores the sharded pool
   adds parallel speedup on top.

2. **Persistence wins.** A fresh process whose ``cache_dir`` holds a
   spilled artifact compiles ≥10x faster than a cold fresh process: the
   warm path is a file read plus an unpickle instead of the full
   parse→fuse→emit pipeline. Both child processes pre-import the
   execution modules, so the timed region isolates compile work (the
   imports are identical on both sides and a service process pays them
   once at boot, not per compile).
"""

from __future__ import annotations

import gc
import os
import subprocess
import sys
import textwrap
import time

from repro.bench.runner import run_forest
from repro.workloads.render import (
    DEFAULT_GLOBALS,
    RENDER_PURE_IMPLS,
    RENDER_SOURCE,
    build_document,
    replicated_pages_spec,
)

FOREST = 64
PAGES = 2
WORKERS = 2
ROUNDS = 5


def _forest():
    return [replicated_pages_spec(PAGES) for _ in range(FOREST)]


def _run(executor, sequential: bool):
    return run_forest(
        "sequential" if sequential else "batched",
        RENDER_SOURCE,
        _forest(),
        build_document,
        globals_map=DEFAULT_GLOBALS,
        pure_impls=RENDER_PURE_IMPLS,
        sequential=sequential,
        executor=executor,
    )


def test_batched_beats_sequential_single_tree(results_dir):
    from repro.service.executor import BatchExecutor

    with BatchExecutor(workers=WORKERS, backend="thread") as executor:
        # warm the compile cache so neither mode pays the cold compile —
        # the comparison is submission pattern, not compilation
        _run(executor, sequential=False)

        sequential_walls, batched_walls = [], []
        sequential_run = batched_run = None
        for _ in range(ROUNDS):
            # level the collector between timed runs: a gen-2 pause
            # landing inside one mode would charge it to the submission
            # pattern, which is not the variable under test
            gc.collect()
            sequential_run = _run(executor, sequential=True)
            sequential_walls.append(sequential_run.wall_seconds)
            gc.collect()
            batched_run = _run(executor, sequential=False)
            batched_walls.append(batched_run.wall_seconds)

    # both modes executed identical forests to identical results
    assert sequential_run.trees == batched_run.trees == FOREST
    assert sequential_run.summaries == batched_run.summaries

    sequential_s = min(sequential_walls)
    batched_s = min(batched_walls)
    latency = batched_run.stats["tree_latency"]
    text = (
        f"Service throughput (render forest, {FOREST} trees x {PAGES} "
        f"pages, one {WORKERS}-worker thread executor, best of "
        f"{ROUNDS})\n"
        f"sequential single-tree requests: {sequential_s * 1e3:8.1f} ms "
        f"({FOREST} waves of 1)\n"
        f"batched forest request:          {batched_s * 1e3:8.1f} ms "
        f"(1 wave)\n"
        f"speedup (sequential/batched):    {sequential_s / batched_s:8.2f}x\n"
        f"batched tree latency: p50 {latency['p50'] * 1e3:.3f} ms, "
        f"p99 {latency['p99'] * 1e3:.3f} ms"
    )
    print()
    print(text)
    assert batched_s < sequential_s, (
        f"batched {batched_s * 1e3:.1f} ms did not beat sequential "
        f"{sequential_s * 1e3:.1f} ms"
    )
    # write only after the gate: a failing run must not overwrite a
    # passing run's committed artifact
    _write_section(results_dir, "Service throughput", text)


_CHILD = textwrap.dedent(
    """
    import importlib, pkgutil, sys, time
    # pre-import *every* repro module before the timer starts: on this
    # single-CPU host, first-import cost (~100s of ms across the
    # compile stack) would otherwise be charged to whichever measurement
    # runs first — polluting exactly the cold numbers the 10x claim is
    # about. A real service process pays imports once at boot, not per
    # compile, so the timed region must isolate compile work.
    import repro
    for _m in pkgutil.walk_packages(repro.__path__, "repro."):
        if _m.name.endswith("__main__"):
            continue  # the CLI entry point execs main() on import
        importlib.import_module(_m.name)
    from repro.pipeline import CompileOptions
    from repro.pipeline import compile as pipeline_compile
    from repro.storage import MemoryTier
    from repro.workloads.render import (
        DEFAULT_GLOBALS, render_workload, build_document,
        replicated_pages_spec,
    )
    from repro.runtime import Heap

    workload = render_workload()
    options = CompileOptions(cache_dir=sys.argv[1])
    start = time.perf_counter()
    result = pipeline_compile(
        workload, options=options, cache=MemoryTier(),
    )
    seconds = time.perf_counter() - start
    # prove the artifact actually runs in this process
    heap = Heap(result.program)
    root = build_document(result.program, heap, replicated_pages_spec(2))
    result.compiled_fused.run_fused(heap, root, DEFAULT_GLOBALS)
    assert root.snapshot(result.program)
    print(f"{seconds:.6f} {int(result.cache_hit)}")
    """
)


def _child_compile_seconds(cache_dir: str) -> tuple[float, bool]:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, cache_dir],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    seconds, hit = proc.stdout.split()
    return float(seconds), bool(int(hit))


def test_warm_store_compiles_10x_faster_across_processes(
    results_dir, tmp_path
):
    cache_dir = str(tmp_path / "artifacts")

    cold_s, cold_hit = _child_compile_seconds(cache_dir)
    assert not cold_hit
    warm_series = []
    for _ in range(ROUNDS):
        warm_s, warm_hit = _child_compile_seconds(cache_dir)
        assert warm_hit
        warm_series.append(warm_s)
    warm_s = min(warm_series)

    text = (
        "Persistent store, cross-process (render program, fresh "
        "process per measurement)\n"
        f"cold compile (empty store):  {cold_s * 1e3:8.1f} ms\n"
        f"warm compile (stored artifact): {warm_s * 1e3:5.1f} ms "
        f"(best of {ROUNDS})\n"
        f"speedup (cold/warm):         {cold_s / warm_s:8.1f}x"
    )
    print()
    print(text)
    assert cold_s >= warm_s * 10, (
        f"warm start {warm_s * 1e3:.1f} ms is not 10x faster than cold "
        f"{cold_s * 1e3:.1f} ms"
    )
    _write_section(results_dir, "Persistent store", text)


# service_throughput.txt holds one section per test so a partial run
# (-k, a failure) leaves the other section's committed numbers intact
_SECTION_MARKERS = ["Service throughput", "Persistent store"]


def _write_section(results_dir, marker: str, text: str) -> None:
    path = results_dir / "service_throughput.txt"
    existing = path.read_text() if path.exists() else ""
    positions = sorted(
        (existing.index(m), m) for m in _SECTION_MARKERS if m in existing
    )
    sections = {}
    for (start, m), nxt in zip(
        positions, positions[1:] + [(len(existing), None)]
    ):
        sections[m] = existing[start : nxt[0]].rstrip("\n")
    sections[marker] = text
    path.write_text(
        "\n".join(sections[m] for m in _SECTION_MARKERS if m in sections)
        + "\n"
    )
