"""Fig. 9b — render tree, TreeFuser fused vs TreeFuser unfused.

Paper shape: fewer node visits and cache misses than its own baseline,
but 30-40% *more* instructions — so runtime does not improve until deep
into cache-bound territory (and the paper's TreeFuser never wins).
"""

from repro.bench.experiments import fig9b_render_treefuser
from repro.bench.runner import lowered_fused_for, lowered_for
from repro.bench.metrics import measure_run
from repro.treefuser import lower_tree
from repro.workloads.render import build_document, render_program, replicated_pages_spec
from repro.workloads.render.schema import DEFAULT_GLOBALS

SIZES = (1, 4, 16, 64)


def test_fig9b_series(report, benchmark):
    text, data = fig9b_render_treefuser(sizes=SIZES, cache_scale=64)
    report("fig9b_render_treefuser", text)
    series = data["series"]
    # TreeFuser pays instruction overhead (paper: 30-40%)
    assert all(1.1 <= v <= 1.9 for v in series["instructions"])
    # it still reduces node visits and (eventually) L2 misses
    assert all(v < 1.0 for v in series["node_visits"])
    assert series["L2_misses"][-1] < 0.7
    # the instruction overhead keeps small-input runtime wins marginal
    # (our grouping engine fuses the lowered program's visits harder than
    # the original TreeFuser, so unlike the paper it ekes out a small
    # gain — see EXPERIMENTS.md; the overhead effect is still visible)
    assert series["runtime"][0] >= 0.8
    program = render_program()
    lowered = lowered_for(program)
    fused = lowered_fused_for(program)
    spec = replicated_pages_spec(8)

    def build(p, h):
        from repro.runtime import Heap

        src = Heap(program)
        return lower_tree(program, lowered, h, build_document(program, src, spec))

    benchmark.pedantic(
        lambda: measure_run(lowered.program, build, DEFAULT_GLOBALS, fused=fused),
        rounds=3, iterations=1,
    )
