"""Observability overhead gate: tracing disabled must be free.

Three variants of the same warm compile + execution step, measured
interleaved (one round of each per iteration, so clock drift hits all
variants equally):

* **floor** — every ``obs`` entry point monkeypatched to a no-op and
  every instrument method stubbed: the cost the code would have if the
  observability layer did not exist;
* **disabled** — the shipped default: ``obs.span(...)`` returns the
  shared noop span, counters still count;
* **enabled** — full span capture into the ring buffer.

Acceptance (ISSUE 7): the disabled median is within 2% of the floor
median. Results land in benchmark_results/obs_overhead.txt.
"""

import statistics
import time
from contextlib import contextmanager, nullcontext

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.pipeline import compile as pipeline_compile
from repro.service.api import WORKLOADS
from repro.service.executor import BatchExecutor
from repro.storage import MemoryTier
from repro.workloads.render.schema import RENDER_SOURCE

ROUNDS = 40
WARMUP = 5


class _DummyInstrument:
    def inc(self, *args, **kwargs):
        pass

    def dec(self, *args, **kwargs):
        pass

    def set(self, *args, **kwargs):
        pass

    def observe(self, *args, **kwargs):
        pass


_DUMMY = _DummyInstrument()


@contextmanager
def _stub_everything():
    """The floor: obs entry points and instrument methods all no-ops."""
    saved_obs = {
        name: getattr(obs, name)
        for name in (
            "span", "span_from", "current_context", "collect_spans",
            "ingest",
        )
    }
    saved_methods = [
        (cls, name, getattr(cls, name))
        for cls, names in (
            (obs_metrics.Counter, ("inc",)),
            (obs_metrics.Gauge, ("set", "inc", "dec")),
            (obs_metrics.Histogram, ("observe",)),
            (obs_metrics.Family, ("labels", "inc", "set", "dec",
                                  "observe")),
        )
        for name in names
    ]
    try:
        obs.span = lambda *a, **k: obs.NOOP_SPAN
        obs.span_from = lambda *a, **k: obs.NOOP_SPAN
        obs.current_context = lambda: None
        obs.collect_spans = lambda *a, **k: nullcontext(None)
        obs.ingest = lambda *a, **k: None
        for cls, name, _ in saved_methods:
            if name == "labels":
                setattr(cls, name, lambda self, **kw: _DUMMY)
            else:
                setattr(cls, name, lambda self, *a, **k: None)
        yield
    finally:
        for name, value in saved_obs.items():
            setattr(obs, name, value)
        for cls, name, original in saved_methods:
            setattr(cls, name, original)


@contextmanager
def _tracing_enabled():
    obs.enable()
    try:
        yield
    finally:
        obs.disable()


VARIANTS = [
    ("floor", _stub_everything),
    ("disabled", nullcontext),
    ("enabled", _tracing_enabled),
]


def test_disabled_tracing_overhead_under_two_percent(results_dir):
    cache = MemoryTier()
    pipeline_compile(RENDER_SOURCE, cache=cache)  # warm the result key
    spec = WORKLOADS["render"]

    with BatchExecutor(workers=1, backend="inline") as executor:

        def step():
            result = pipeline_compile(RENDER_SOURCE, cache=cache)
            assert result.cache_hit
            outcome = executor.run(
                [spec.make_request(trees=4, size=2)]
            )
            assert outcome[0].ok

        for _ in range(WARMUP):
            for _, patches in VARIANTS:
                with patches():
                    step()

        series = {name: [] for name, _ in VARIANTS}
        for _ in range(ROUNDS):
            for name, patches in VARIANTS:
                with patches():
                    start = time.perf_counter()
                    step()
                    series[name].append(
                        time.perf_counter() - start
                    )

    medians = {
        name: statistics.median(values) * 1e3
        for name, values in series.items()
    }

    def overhead(name):
        return (medians[name] / medians["floor"] - 1.0) * 100.0

    text = (
        "Observability overhead (warm compile + exec, render x4 "
        f"trees, {ROUNDS} interleaved rounds)\n"
        f"floor (instrumentation stubbed out): "
        f"median {medians['floor']:.3f} ms\n"
        f"tracing disabled (shipped default):  "
        f"median {medians['disabled']:.3f} ms "
        f"({overhead('disabled'):+.2f}%)\n"
        f"tracing enabled (full span capture): "
        f"median {medians['enabled']:.3f} ms "
        f"({overhead('enabled'):+.2f}%)\n"
        "gate: disabled median <= floor median * 1.02"
    )
    print()
    print(text)
    assert medians["disabled"] <= medians["floor"] * 1.02, text
    # write only after the gate: a failing run must not overwrite a
    # passing run's committed artifact
    (results_dir / "obs_overhead.txt").write_text(text + "\n")
