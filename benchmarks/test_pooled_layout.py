"""Pooled layout benchmark: structure-of-arrays vs object-graph runs.

The claim behind ``CompileOptions(layout='pooled')`` (ISSUE 6): a
service answering repeated requests pays, per request, for realizing a
tree and traversing it. The object backend must build a fresh ``Node``
graph every time (traversals mutate their input), then chase
``fields`` dicts and per-node dispatch through it. The pooled backend
serializes the workload's tree into flat columns *once*; each request
is then a C-level column copy (``pool.clone()``), a bind, and an
index-chasing fused run — no per-request tree construction at all.

Three series on fig9/fig11-scale inputs:

* **render, per-request** — object (build + fused run) vs pooled
  (clone + bind + fused run) on a 16-page document (Fig. 9 scale).
* **astlang, per-request** — same comparison on a 24-function AST
  (Fig. 11 scale).
* **batch reuse, 64-tree wave** — the pooled *round trip* (ingest →
  run → write back, what ``run_fused`` does for a single stray
  request) amortized: one ingest serving 64 cloned runs vs 64 full
  round trips vs 64 object runs.

Acceptance (asserted *before* the artifact is written, so a failing
run cannot overwrite a passing run's committed numbers): pooled
per-request >= 1.3x faster than object on both render and astlang, and
the reused pool beats per-request round trips on the 64-tree wave.
Results land in ``benchmark_results/pooled_layout.txt``.
"""

from __future__ import annotations

import time

from repro.codegen.python_backend import RuntimeContext
from repro.layout import ForestPool
from repro.pipeline import CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.runtime import Heap
from repro.service.batching import default_collect
from repro.workloads.astlang import astlang_workload
from repro.workloads.render import render_workload

ROUNDS = 12
WAVE = 64
WAVE_ROUNDS = 3
GATE = 1.3


def _compiled_pair(workload):
    object_result = pipeline_compile(workload, options=CompileOptions())
    pooled_result = pipeline_compile(
        workload, options=CompileOptions(layout="pooled")
    )
    return object_result, pooled_result


def _per_request_series(workload, spec_kwargs):
    """Best-of-ROUNDS per-request seconds for both layouts, plus a
    result-parity check between them."""
    object_result, pooled_result = _compiled_pair(workload)
    program = object_result.program
    spec = workload.make_spec(**spec_kwargs)
    globals_map = dict(workload.globals_map or {})

    object_times = []
    object_summary = None
    for _ in range(ROUNDS):
        heap = Heap(program)
        start = time.perf_counter()
        root = workload.build_tree(program, heap, spec)
        object_result.compiled_fused.run_fused(
            heap, root, dict(globals_map)
        )
        object_times.append(time.perf_counter() - start)
        object_summary = default_collect(program, heap, root)

    # ingest once; every request clones the master pool
    master_heap = Heap(program)
    master_root = workload.build_tree(program, master_heap, spec)
    master = ForestPool.from_tree(program, master_root)
    fused = pooled_result.compiled_fused
    pooled_times = []
    last_pool = None
    for _ in range(ROUNDS):
        heap = Heap(program)
        start = time.perf_counter()
        pool = master.clone()
        context = RuntimeContext(program, heap, dict(globals_map))
        fused.bind(context, pool)["run_fused"](pool.roots[0])
        pooled_times.append(time.perf_counter() - start)
        last_pool = pool

    # parity: the cloned pooled run computed the same tree state
    result_heap = Heap(program)
    result_root = last_pool.to_tree(result_heap, last_pool.roots[0])
    pooled_summary = default_collect(program, result_heap, result_root)
    assert (
        pooled_summary["snapshot_sha"] == object_summary["snapshot_sha"]
    ), f"{workload.name}: pooled and object runs diverged"

    return min(object_times), min(pooled_times)


def _wave_series(workload, spec_kwargs):
    """Seconds per WAVE-tree wave: object, pooled round trip per tree,
    pooled with one shared ingest."""
    object_result, pooled_result = _compiled_pair(workload)
    program = object_result.program
    spec = workload.make_spec(**spec_kwargs)
    globals_map = dict(workload.globals_map or {})
    fused = pooled_result.compiled_fused

    object_waves = []
    for _ in range(WAVE_ROUNDS):
        start = time.perf_counter()
        for _ in range(WAVE):
            heap = Heap(program)
            root = workload.build_tree(program, heap, spec)
            object_result.compiled_fused.run_fused(
                heap, root, dict(globals_map)
            )
        object_waves.append(time.perf_counter() - start)

    round_trip_waves = []
    for _ in range(WAVE_ROUNDS):
        start = time.perf_counter()
        for _ in range(WAVE):
            # what a lone pooled request costs: build + ingest + run +
            # write back (run_fused's full round trip)
            heap = Heap(program)
            root = workload.build_tree(program, heap, spec)
            fused.run_fused(heap, root, dict(globals_map))
        round_trip_waves.append(time.perf_counter() - start)

    reuse_waves = []
    for _ in range(WAVE_ROUNDS):
        start = time.perf_counter()
        master_heap = Heap(program)
        master_root = workload.build_tree(program, master_heap, spec)
        master = ForestPool.from_tree(program, master_root)
        for _ in range(WAVE):
            heap = Heap(program)
            pool = master.clone()
            context = RuntimeContext(program, heap, dict(globals_map))
            fused.bind(context, pool)["run_fused"](pool.roots[0])
        reuse_waves.append(time.perf_counter() - start)

    return min(object_waves), min(round_trip_waves), min(reuse_waves)


def test_pooled_layout_speedups(results_dir):
    render_object, render_pooled = _per_request_series(
        render_workload(), {"pages": 16}
    )
    ast_object, ast_pooled = _per_request_series(
        astlang_workload(), {"functions": 24}
    )
    wave_object, wave_round_trip, wave_reuse = _wave_series(
        render_workload(), {"pages": 4}
    )

    render_speedup = render_object / render_pooled
    ast_speedup = ast_object / ast_pooled
    text = (
        "Pooled (structure-of-arrays) vs object-graph layout, fused "
        "runs (best-of timings, single core)\n"
        "\n"
        f"render, 16 pages (Fig. 9 scale), per request "
        f"(best of {ROUNDS}):\n"
        f"  object  (build tree + run):   {render_object * 1e3:8.2f} ms\n"
        f"  pooled  (clone + bind + run): {render_pooled * 1e3:8.2f} ms\n"
        f"  speedup:                      {render_speedup:8.2f}x "
        f"(>= {GATE}x required)\n"
        "\n"
        f"astlang, 24 functions (Fig. 11 scale), per request "
        f"(best of {ROUNDS}):\n"
        f"  object  (build tree + run):   {ast_object * 1e3:8.2f} ms\n"
        f"  pooled  (clone + bind + run): {ast_pooled * 1e3:8.2f} ms\n"
        f"  speedup:                      {ast_speedup:8.2f}x "
        f"(>= {GATE}x required)\n"
        "\n"
        f"batch reuse, {WAVE}-tree render wave, 4 pages "
        f"(best of {WAVE_ROUNDS} waves):\n"
        f"  object, per-tree build + run:      "
        f"{wave_object * 1e3:8.1f} ms\n"
        f"  pooled, per-tree full round trip:  "
        f"{wave_round_trip * 1e3:8.1f} ms\n"
        f"  pooled, one ingest + {WAVE} clones:    "
        f"{wave_reuse * 1e3:8.1f} ms\n"
        f"  reuse vs round trip:               "
        f"{wave_round_trip / wave_reuse:8.2f}x\n"
        f"  reuse vs object:                   "
        f"{wave_object / wave_reuse:8.2f}x"
    )
    print()
    print(text)

    # gates first: a failing run must not overwrite the committed
    # artifact from a passing run
    assert render_speedup >= GATE, (
        f"pooled render per-request speedup {render_speedup:.2f}x "
        f"is below the {GATE}x gate"
    )
    assert ast_speedup >= GATE, (
        f"pooled astlang per-request speedup {ast_speedup:.2f}x "
        f"is below the {GATE}x gate"
    )
    assert wave_reuse < wave_round_trip, (
        "pool reuse did not amortize the per-request round trip"
    )
    assert wave_reuse < wave_object, (
        "reused pooled wave is slower than the object wave"
    )
    (results_dir / "pooled_layout.txt").write_text(text + "\n")
