"""Table 1 — capability matrix, plus fusion (compile-time) cost timing."""

from repro.bench.experiments import table1_capabilities
from repro.fusion import fuse_program

from tests.fixtures import fig2_program


def test_table1(report, benchmark):
    text, rows = table1_capabilities()
    report("table1_capabilities", text)
    grafter_row = rows[-1]
    assert grafter_row[1:] == ("yes", "yes", "yes", "yes")
    treefuser_row = rows[-2]
    assert treefuser_row[1] == "no"  # no heterogeneous trees
    # time the fusion engine itself on the paper's running example
    program = fig2_program()
    benchmark.pedantic(lambda: fuse_program(program), rounds=3, iterations=1)
