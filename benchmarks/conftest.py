"""Shared benchmark fixtures.

Every benchmark (a) regenerates one paper table/figure via
:mod:`repro.bench.experiments`, printing it and writing it under
``benchmark_results/``, and (b) times a representative fused/unfused run
pair with pytest-benchmark so `--benchmark-only` output shows the
wall-clock comparison too.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmark_results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """report(name, text): print and persist one experiment report."""

    def write(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return write
