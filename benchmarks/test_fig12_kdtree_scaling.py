"""Fig. 12 — kd-tree equation 1 across tree depths.

Paper shape: 83% fewer node visits, ~90% fewer L2 misses, runtime
improving from ~15% (small trees) to ~66% (large)."""

from repro.bench.experiments import fig12_kdtree_scaling
from repro.bench.metrics import measure_run
from repro.bench.runner import fused_for
from repro.workloads.kdtree import (
    EQ1_SCHEDULE,
    KD_DEFAULT_GLOBALS,
    build_balanced_tree,
    equation_program,
)

DEPTHS = (4, 6, 8, 10, 12)


def test_fig12_series(report, benchmark):
    text, data = fig12_kdtree_scaling(depths=DEPTHS, cache_scale=64)
    report("fig12_kdtree_scaling", text)
    series = data["series"]
    # the leaf-algebra schedule fuses almost totally (paper: 0.17)
    assert all(0.1 <= v <= 0.35 for v in series["node_visits"])
    assert all(v <= 1.05 for v in series["instructions"])
    # runtime improves more as depth grows (crossover shape)
    assert series["runtime"][-1] <= series["runtime"][0]
    assert series["runtime"][-1] <= 0.7
    assert series["L2_misses"][-1] <= 0.4
    program = equation_program(EQ1_SCHEDULE, "eq1-bench")
    fused = fused_for(program)
    benchmark.pedantic(
        lambda: measure_run(
            program,
            lambda p, h: build_balanced_tree(p, h, depth=9),
            KD_DEFAULT_GLOBALS,
            fused=fused,
        ),
        rounds=3, iterations=1,
    )
