"""Fig. 11 — AST passes across program sizes.

Paper shape: large L2 miss reductions (75%), L3 reductions once the tree
is big enough, a small instruction overhead (4-15%) from dynamically
truncated traversals, runtime 1.25-2.5x faster.
"""

from repro.bench.experiments import fig11_ast_scaling
from repro.bench.metrics import measure_run
from repro.bench.runner import fused_for
from repro.workloads.astlang import ast_program
from repro.workloads.astlang.programs import replicated_functions

SIZES = (4, 16, 64, 192)


def test_fig11_series(report, benchmark):
    text, data = fig11_ast_scaling(sizes=SIZES, cache_scale=64)
    report("fig11_ast_scaling", text)
    series = data["series"]
    # visits drop but far less than the render tree (mutation blocks
    # expression-level fusion)
    assert all(0.4 <= v <= 0.95 for v in series["node_visits"])
    # small instruction overhead band
    assert all(0.9 <= v <= 1.25 for v in series["instructions"])
    # cache misses drop once the tree outgrows L2
    assert series["L2_misses"][-1] <= 0.6
    # runtime improves for larger trees
    assert series["runtime"][-1] < 0.95
    program = ast_program()
    fused = fused_for(program)
    benchmark.pedantic(
        lambda: measure_run(
            program, lambda p, h: replicated_functions(p, h, 24), fused=fused
        ),
        rounds=3, iterations=1,
    )
