"""Ablation — the fusion termination cutoffs (paper §4).

The paper bounds fusion by (a) the length of a fused sequence and (b)
how often one static function may repeat in it. This ablation sweeps the
sequence cutoff on the render workload: tighter cutoffs mean fewer
traversals per fused unit and more node visits, converging once the
cutoff exceeds what the dependences allow anyway.
"""

from repro.bench.metrics import measure_run
from repro.bench.tables import format_series
from repro.fusion import FusionLimits, fuse_program
from repro.workloads.render import build_document, render_program, replicated_pages_spec
from repro.workloads.render.schema import DEFAULT_GLOBALS

CUTOFFS = (1, 2, 3, 6, 12)


def test_cutoff_ablation(report, benchmark):
    program = render_program()
    spec = replicated_pages_spec(6)

    def build(p, h):
        return build_document(p, h, spec)

    baseline = measure_run(program, build, DEFAULT_GLOBALS)
    ratios = []
    units = []
    for cutoff in CUTOFFS:
        fused = fuse_program(program, limits=FusionLimits(max_sequence=cutoff))
        run = measure_run(program, build, DEFAULT_GLOBALS, fused=fused)
        ratios.append(run.node_visits / baseline.node_visits)
        units.append(fused.unit_count)
    text = format_series(
        "Ablation — max fused-sequence cutoff (render tree)",
        "max_sequence",
        list(CUTOFFS),
        {"node_visits_ratio": ratios, "fused_units": units},
        note="visits converge once the cutoff exceeds the dependence-"
             "limited cluster width",
    )
    report("ablation_cutoffs", text)
    # monotone: larger cutoffs never fuse less
    for earlier, later in zip(ratios, ratios[1:]):
        assert later <= earlier + 1e-9
    # cutoff 1 disables cross-traversal fusion entirely
    assert ratios[0] >= 0.95
    # the default cutoff reaches the dependence-limited optimum
    assert ratios[-1] == min(ratios)
    fused = fuse_program(program, limits=FusionLimits(max_sequence=12))
    benchmark.pedantic(
        lambda: measure_run(program, build, DEFAULT_GLOBALS, fused=fused),
        rounds=3, iterations=1,
    )
