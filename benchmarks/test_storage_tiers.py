"""Tiered storage benchmark: cold vs warm-disk vs peer-served compiles.

The multi-host claim behind the tiered store (ISSUE 5): a process whose
only warm source is a *peer* — another host's store, reached through a
:class:`~repro.storage.PeerTier` — compiles nearly as fast as one with
a warm local disk store, and an order of magnitude faster than a cold
compile. Three child-process configurations, identical except for their
storage topology:

* **cold** — a fresh store directory per round: the full
  parse→fuse→emit pipeline.
* **warm disk** — a pre-populated local ``cache_dir``: one file read
  plus an unpickle.
* **peer** — a fresh, empty local ``cache_dir`` plus ``peers=[seeded
  store]``: the peer read, then read-through *promotion* into the local
  disk and memory tiers (so the next process is locally warm).

Every child pre-imports all of ``repro`` before its timer starts
(single-CPU host: first-import noise would otherwise pollute the cold
numbers — see the same fix in ``test_service_throughput.py``).

Acceptance: peer-served <= 2x warm-disk, and >= 10x faster than cold.
Results land in ``benchmark_results/storage_tiers.txt``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

FOREST_PAGES = 2
ROUNDS = 5
COLD_ROUNDS = 3

_CHILD = textwrap.dedent(
    """
    import importlib, pkgutil, sys, time
    # pre-import everything so the timer measures compile work, not
    # first-import cost (see module docstring)
    import repro
    for _m in pkgutil.walk_packages(repro.__path__, "repro."):
        if _m.name.endswith("__main__"):
            continue  # the CLI entry point execs main() on import
        importlib.import_module(_m.name)
    from repro.pipeline import CompileOptions
    from repro.pipeline import compile as pipeline_compile
    from repro.storage import MemoryTier
    from repro.workloads.render import (
        DEFAULT_GLOBALS, render_workload, build_document,
        replicated_pages_spec,
    )
    from repro.runtime import Heap

    cache_dir = sys.argv[1]
    peers = tuple(sys.argv[2:])
    workload = render_workload()
    options = CompileOptions(cache_dir=cache_dir, peers=peers)
    start = time.perf_counter()
    result = pipeline_compile(
        workload, options=options, cache=MemoryTier(),
    )
    seconds = time.perf_counter() - start
    # prove the artifact actually runs in this process
    heap = Heap(result.program)
    root = build_document(
        result.program, heap, replicated_pages_spec(2)
    )
    result.compiled_fused.run_fused(heap, root, DEFAULT_GLOBALS)
    assert root.snapshot(result.program)
    print(f"{seconds:.6f} {int(result.cache_hit)}")
    """
)


def _child_compile_seconds(cache_dir: str, *peers: str):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, cache_dir, *peers],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    seconds, hit = proc.stdout.split()
    return float(seconds), bool(int(hit))


def test_peer_tier_within_2x_of_warm_disk_and_10x_over_cold(
    results_dir, tmp_path
):
    seeded = str(tmp_path / "seeded-store")

    # seed the "other host's" store (also the cold baseline's 1st round)
    cold_series = []
    cold_s, cold_hit = _child_compile_seconds(seeded)
    assert not cold_hit
    cold_series.append(cold_s)
    for i in range(COLD_ROUNDS - 1):
        s, hit = _child_compile_seconds(str(tmp_path / f"cold-{i}"))
        assert not hit
        cold_series.append(s)

    warm_series = []
    for _ in range(ROUNDS):
        s, hit = _child_compile_seconds(seeded)
        assert hit
        warm_series.append(s)

    peer_series = []
    for i in range(ROUNDS):
        # a fresh local store every round: the peer path must be
        # measured as a first contact, not a promoted local re-hit
        s, hit = _child_compile_seconds(
            str(tmp_path / f"peer-local-{i}"), seeded
        )
        assert hit
        peer_series.append(s)

    # promotion check: the peer round's local store is now warm on its
    # own — a rerun against it without the peer must hit
    s, hit = _child_compile_seconds(str(tmp_path / "peer-local-0"))
    assert hit, "peer hit was not promoted into the local store"

    cold_min = min(cold_series)
    warm_min = min(warm_series)
    peer_min = min(peer_series)
    text = (
        "Tiered storage, cross-process (render workload, fresh process "
        "per measurement, single core)\n"
        f"cold compile (empty tiers):      {cold_min * 1e3:8.1f} ms "
        f"(best of {COLD_ROUNDS})\n"
        f"warm local disk tier:            {warm_min * 1e3:8.1f} ms "
        f"(best of {ROUNDS})\n"
        f"peer tier (fresh local store):   {peer_min * 1e3:8.1f} ms "
        f"(best of {ROUNDS}; promoted into local tiers)\n"
        f"peer vs warm disk:               {peer_min / warm_min:8.2f}x "
        "(<= 2x required)\n"
        f"cold vs peer:                    {cold_min / peer_min:8.1f}x "
        "(>= 10x required)\n"
        "post-promotion rerun without the peer: local hit"
    )
    print()
    print(text)
    assert peer_min <= 2.0 * warm_min, (
        f"peer-served compile {peer_min * 1e3:.1f} ms is not within 2x "
        f"of warm-disk {warm_min * 1e3:.1f} ms"
    )
    assert cold_min >= 10.0 * peer_min, (
        f"peer-served compile {peer_min * 1e3:.1f} ms is not 10x faster "
        f"than cold {cold_min * 1e3:.1f} ms"
    )
    # write only after the gates: a failing run must not overwrite a
    # passing run's committed artifact
    (results_dir / "storage_tiers.txt").write_text(text + "\n")
