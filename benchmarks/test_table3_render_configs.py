"""Table 3 — render-tree document configurations.

Paper: Doc1 (many simple pages) runtime 0.22, Doc2 (one dense page) 0.65,
Doc3 (mixed sizes) 0.47; node visits ~0.4 everywhere; speedups 1.5-4.5x.
"""

from repro.bench.experiments import table3_render_configs
from repro.bench.metrics import measure_run
from repro.bench.runner import fused_for
from repro.workloads.render import build_document, doc3_spec, render_program
from repro.workloads.render.schema import DEFAULT_GLOBALS


def test_table3(report, benchmark):
    text, data = table3_render_configs(cache_scale=64)
    report("table3_render_configs", text)
    for label, normalized in data.items():
        # every configuration speeds up (1.1x .. 5x) with ~0.3-0.45 visits
        assert 0.2 <= normalized["runtime"] <= 0.95, label
        assert 0.25 <= normalized["node_visits"] <= 0.5, label
    # Doc1's many identical small pages stream worst unfused -> largest win
    runtimes = {k: v["runtime"] for k, v in data.items()}
    doc1 = runtimes["Doc1 (many simple pages)"]
    doc2 = runtimes["Doc2 (one dense page)"]
    assert doc1 <= doc2
    program = render_program()
    fused = fused_for(program)
    spec = doc3_spec(num_pages=12)
    benchmark.pedantic(
        lambda: measure_run(
            program, lambda p, h: build_document(p, h, spec),
            DEFAULT_GLOBALS, fused=fused,
        ),
        rounds=3, iterations=1,
    )
