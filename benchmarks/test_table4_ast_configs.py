"""Table 4 — AST program configurations.

Paper: Prog1 (small functions) visits 0.76, Prog2 (one large function)
visits 0.92 (least fusible), Prog3 (long live ranges) largest runtime win
(0.31) thanks to L2+L3 reductions.
"""

from repro.bench.experiments import table4_ast_configs
from repro.bench.metrics import measure_run
from repro.bench.runner import fused_for
from repro.workloads.astlang import ast_program
from repro.workloads.astlang.programs import prog3_spec


def test_table4(report, benchmark):
    text, data = table4_ast_configs(cache_scale=64)
    report("table4_ast_configs", text)
    visits = {k: v["node_visits"] for k, v in data.items()}
    # every configuration reduces visits, none dramatically (paper band)
    assert all(0.4 <= v < 1.0 for v in visits.values())
    # Prog1's many small functions fuse at least as well as Prog2's
    # single large one (paper: 0.76 vs 0.92)
    assert (
        visits["Prog1 (small functions)"]
        <= visits["Prog2 (one large function)"] + 0.05
    )
    for label, normalized in data.items():
        assert normalized["runtime"] <= 1.1, label
    program = ast_program()
    fused = fused_for(program)
    benchmark.pedantic(
        lambda: measure_run(
            program,
            lambda p, h: prog3_spec(p, h, num_functions=8, stmts_per_function=24),
            fused=fused,
        ),
        rounds=3, iterations=1,
    )
