"""Fig. 9a — render tree, Grafter fused vs unfused across document sizes.

Paper shape: ~60% fewer node visits, no instruction overhead, large L2/L3
miss reductions once the tree exceeds the cache, runtime improvements from
~20% (single page) to ~60%+ (large documents).
"""

from repro.bench.experiments import fig9a_render_grafter
from repro.bench.runner import fused_for
from repro.bench.metrics import measure_run
from repro.workloads.render import build_document, render_program, replicated_pages_spec
from repro.workloads.render.schema import DEFAULT_GLOBALS

SIZES = (1, 4, 16, 64, 256)


def test_fig9a_series(report, benchmark):
    text, data = fig9a_render_grafter(sizes=SIZES, cache_scale=64)
    report("fig9a_render_grafter", text)
    series = data["series"]
    # paper shapes
    assert all(0.2 <= v <= 0.5 for v in series["node_visits"])
    assert all(v <= 1.05 for v in series["instructions"])
    assert series["runtime"][0] <= 0.95  # wins even on one page
    assert series["runtime"][-1] <= 0.5  # big win once L3 spills
    assert series["L3_misses"][-1] <= 0.5
    # monotone-ish: larger documents benefit at least as much
    assert series["runtime"][-1] <= series["runtime"][0]
    # time the fused run on a mid-size document
    program = render_program()
    fused = fused_for(program)
    spec = replicated_pages_spec(16)
    benchmark.pedantic(
        lambda: measure_run(
            program, lambda p, h: build_document(p, h, spec),
            DEFAULT_GLOBALS, fused=fused,
        ),
        rounds=3, iterations=1,
    )


def test_fig9a_unfused_timing(benchmark):
    """Wall-clock baseline for the same document (pairs with the fused
    timing above in the pytest-benchmark table)."""
    program = render_program()
    spec = replicated_pages_spec(16)
    benchmark.pedantic(
        lambda: measure_run(
            program, lambda p, h: build_document(p, h, spec), DEFAULT_GLOBALS
        ),
        rounds=3, iterations=1,
    )
