"""Incremental compilation benchmark: cold vs single-edit recompile vs warm.

The scenario the unit-granular pipeline exists for: a developer edits
one traversal of the render workload and recompiles. The whole-result
key misses (the source changed), but unchanged compilation units —
access summaries, dependence structures, fusion plans, emitted module
functions — reload from the unit layer, so only the dirtied slice of
the pipeline re-runs. Single core, one process: the win is pure reuse,
not parallelism.

Acceptance (ISSUE 4): recompile after editing one traversal is >= 3x
faster than a cold compile and produces byte-identical generated
Python. Results land in benchmark_results/incremental_compile.txt.
"""

import importlib
import pkgutil
import time

import repro
from repro.pipeline import CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.storage import MemoryTier
from repro.workloads.render.schema import RENDER_SOURCE

# pre-import every repro module before any timer runs: on this
# single-CPU host a lazy first import landing inside a timed region
# (the pipeline pulls several modules on demand) would be charged to
# whichever series hits it first — usually the cold one, inflating the
# very baseline the speedup is measured against
for _module in pkgutil.walk_packages(repro.__path__, "repro."):
    if _module.name.endswith("__main__"):
        continue  # the CLI entry point execs main() on import
    importlib.import_module(_module.name)

ROUNDS = 5

# the edited line lives in Button::setFontStyle; each round edits the
# constant to a fresh value, so every recompile is a genuine
# result-cache miss over a warm unit store — the edit loop a developer
# actually runs
_EDIT_ANCHOR = "this->FontSize = size - 1;"


def _variant(round_index: int) -> str:
    assert _EDIT_ANCHOR in RENDER_SOURCE
    return RENDER_SOURCE.replace(
        _EDIT_ANCHOR, f"this->FontSize = size - {round_index + 2};"
    )


def test_incremental_recompile_speedup(results_dir):
    cache = MemoryTier()
    # populate the unit layer once with the pristine source
    pipeline_compile(RENDER_SOURCE, cache=cache)

    cold_series: list[float] = []
    recompile_series: list[float] = []
    warm_series: list[float] = []
    edited = cold = None
    for round_index in range(ROUNDS):
        source = _variant(round_index)
        # single-edit recompile: warm units, missed result key
        start = time.perf_counter()
        edited = pipeline_compile(source, cache=cache)
        recompile_series.append(time.perf_counter() - start)
        assert not edited.cache_hit
        # warm: the identical source again is a whole-result hit
        start = time.perf_counter()
        warm = pipeline_compile(source, cache=cache)
        warm_series.append(time.perf_counter() - start)
        assert warm.cache_hit
        # cold: every cache layer off, full parse -> fuse -> emit
        start = time.perf_counter()
        cold = pipeline_compile(
            source, options=CompileOptions(use_cache=False)
        )
        cold_series.append(time.perf_counter() - start)
        # the acceptance bar: byte-identical generated Python
        assert edited.fused_source == cold.fused_source
        assert edited.unfused_source == cold.unfused_source

    fusion = next(t for t in edited.timings if t.name == "fusion")
    emit = next(t for t in edited.timings if t.name == "emit")
    cold_ms = [s * 1e3 for s in cold_series]
    recompile_ms = [s * 1e3 for s in recompile_series]
    warm_ms = [s * 1e3 for s in warm_series]
    speedup = min(cold_ms) / min(recompile_ms)
    text = (
        "Incremental compile (render program, edit one traversal, "
        f"{ROUNDS} rounds, single core)\n"
        f"cold (no caches):        "
        f"{' '.join(f'{v:.1f}' for v in cold_ms)} ms; "
        f"min {min(cold_ms):.1f} ms\n"
        f"single-edit recompile:   "
        f"{' '.join(f'{v:.1f}' for v in recompile_ms)} ms; "
        f"min {min(recompile_ms):.1f} ms\n"
        f"warm (result hit):       "
        f"{' '.join(f'{v:.3f}' for v in warm_ms)} ms; "
        f"min {min(warm_ms):.3f} ms\n"
        f"recompile speedup:       {speedup:.1f}x over cold "
        "(>= 3x required)\n"
        "unit reuse on the last recompile: "
        f"fusion {fusion.detail['unit_hits']}/"
        f"{fusion.detail['unit_hits'] + fusion.detail['unit_misses']} "
        "plans hit, "
        f"emit {emit.detail['unit_hits']}/"
        f"{emit.detail['unit_hits'] + emit.detail['unit_misses']} "
        "functions hit\n"
        "generated Python: byte-identical to the cold compile every "
        "round"
    )
    print()
    print(text)
    assert speedup >= 3.0
    # write only after the gate: a failing run must not overwrite a
    # passing run's committed artifact
    (results_dir / "incremental_compile.txt").write_text(text + "\n")
