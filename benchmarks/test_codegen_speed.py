"""Generated-code benchmark: compiled fused vs compiled unfused.

The metering interpreter measures the paper's counters; the generated
Python measures honest wall time. In CPython the fused code's saved
dispatches are roughly offset by its active-flag machinery (and there is
no hardware cache locality to harvest), so the expected result is
*parity*, not the paper's speedup — the speedup lives in the simulated
metrics (EXPERIMENTS.md), while this bench guards against the fused
code being outright slower.
"""

from repro.bench.runner import fused_for
from repro.codegen import compile_fused, compile_program
from repro.runtime import Heap
from repro.workloads.render import build_document, render_program, replicated_pages_spec
from repro.workloads.render.schema import DEFAULT_GLOBALS

PAGES = 64


def _fresh_tree():
    program = render_program()
    heap = Heap(program)
    return heap, build_document(program, heap, replicated_pages_spec(PAGES))


def test_codegen_unfused_walltime(benchmark):
    program = render_program()
    compiled = compile_program(program)

    def run():
        heap, root = _fresh_tree()
        compiled.run_entry(heap, root, DEFAULT_GLOBALS)
        return root

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_codegen_fused_walltime(benchmark, report):
    program = render_program()
    compiled_unfused = compile_program(program)
    compiled_fused = compile_fused(fused_for(program))

    def run_fused():
        heap, root = _fresh_tree()
        compiled_fused.run_fused(heap, root, DEFAULT_GLOBALS)
        return root

    result = benchmark.pedantic(run_fused, rounds=5, iterations=1)

    # correctness + speed summary against the unfused compiled version
    import time

    heap_a, root_a = _fresh_tree()
    start = time.perf_counter()
    compiled_unfused.run_entry(heap_a, root_a, DEFAULT_GLOBALS)
    unfused_seconds = time.perf_counter() - start
    heap_b, root_b = _fresh_tree()
    start = time.perf_counter()
    compiled_fused.run_fused(heap_b, root_b, DEFAULT_GLOBALS)
    fused_seconds = time.perf_counter() - start
    assert root_a.snapshot(program) == root_b.snapshot(program)
    report(
        "codegen_speed",
        "Generated-code wall time (render tree, "
        f"{PAGES} pages)\n"
        f"unfused: {unfused_seconds * 1e3:.1f} ms\n"
        f"fused:   {fused_seconds * 1e3:.1f} ms\n"
        f"ratio:   {fused_seconds / unfused_seconds:.2f}",
    )
    # fused generated code should not be slower than unfused generated code
    assert fused_seconds <= unfused_seconds * 1.15
