"""Generated-code benchmark: compiled fused vs compiled unfused.

The metering interpreter measures the paper's counters; the generated
Python measures honest wall time. In CPython the fused code's saved
dispatches are roughly offset by its active-flag machinery (and there is
no hardware cache locality to harvest), so the expected result is
*parity*, not the paper's speedup — the speedup lives in the simulated
metrics (EXPERIMENTS.md), while this bench guards against the fused
code being outright slower.
"""

import time

from repro.bench.runner import fused_for
from repro.codegen import compile_fused, compile_program
from repro.pipeline import CompileCache, CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.runtime import Heap
from repro.workloads.render import (
    RENDER_SOURCE,
    build_document,
    render_program,
    replicated_pages_spec,
)
from repro.workloads.render.schema import DEFAULT_GLOBALS

PAGES = 64
COMPILE_ROUNDS = 5

# codegen_speed.txt holds one section per test, in this order; each test
# rewrites only its own section so any selection of tests (-k, a failure
# in one) leaves the other's committed numbers intact
_SECTION_MARKERS = ["Generated-code wall time", "Pipeline compile time"]


def _write_section(results_dir, marker: str, text: str) -> None:
    path = results_dir / "codegen_speed.txt"
    existing = path.read_text() if path.exists() else ""
    positions = sorted(
        (existing.index(m), m) for m in _SECTION_MARKERS if m in existing
    )
    sections = {}
    for (start, m), nxt in zip(positions, positions[1:] + [(len(existing), None)]):
        sections[m] = existing[start : nxt[0]].rstrip("\n")
    sections[marker] = text
    path.write_text(
        "\n".join(sections[m] for m in _SECTION_MARKERS if m in sections)
        + "\n"
    )


def _fresh_tree():
    program = render_program()
    heap = Heap(program)
    return heap, build_document(program, heap, replicated_pages_spec(PAGES))


def test_codegen_unfused_walltime(benchmark):
    program = render_program()
    compiled = compile_program(program)

    def run():
        heap, root = _fresh_tree()
        compiled.run_entry(heap, root, DEFAULT_GLOBALS)
        return root

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_codegen_fused_walltime(benchmark, results_dir):
    program = render_program()
    compiled_unfused = compile_program(program)
    compiled_fused = compile_fused(fused_for(program))

    def run_fused():
        heap, root = _fresh_tree()
        compiled_fused.run_fused(heap, root, DEFAULT_GLOBALS)
        return root

    result = benchmark.pedantic(run_fused, rounds=5, iterations=1)

    # correctness + speed summary against the unfused compiled version
    # (best of 3 each: single-shot wall times flake past the threshold)
    unfused_times = []
    fused_times = []
    root_a = root_b = None
    for _ in range(3):
        heap_a, root_a = _fresh_tree()
        start = time.perf_counter()
        compiled_unfused.run_entry(heap_a, root_a, DEFAULT_GLOBALS)
        unfused_times.append(time.perf_counter() - start)
        heap_b, root_b = _fresh_tree()
        start = time.perf_counter()
        compiled_fused.run_fused(heap_b, root_b, DEFAULT_GLOBALS)
        fused_times.append(time.perf_counter() - start)
    unfused_seconds = min(unfused_times)
    fused_seconds = min(fused_times)
    assert root_a.snapshot(program) == root_b.snapshot(program)
    text = (
        "Generated-code wall time (render tree, "
        f"{PAGES} pages)\n"
        f"unfused: {unfused_seconds * 1e3:.1f} ms\n"
        f"fused:   {fused_seconds * 1e3:.1f} ms\n"
        f"ratio:   {fused_seconds / unfused_seconds:.2f}"
    )
    print()
    print(text)
    # fused generated code should not be slower than unfused generated code
    assert fused_seconds <= unfused_seconds * 1.15
    # write only after the gate: a failing run must not overwrite a
    # passing run's committed artifact
    _write_section(results_dir, "Generated-code wall time", text)


def test_compile_cold_vs_warm(results_dir):
    """Cold-cache vs warm-cache compile time through the staged pipeline.

    Cold: a fresh CompileCache per round — full parse → fuse → emit.
    Warm: the same source + options again — a content-hash lookup. The
    two series are appended to benchmark_results/codegen_speed.txt so
    the codegen report carries the compile-time split alongside the
    run-time numbers.
    """
    options = CompileOptions()
    cold_series: list[float] = []
    warm_series: list[float] = []
    for _ in range(COMPILE_ROUNDS):
        cache = CompileCache()
        start = time.perf_counter()
        cold = pipeline_compile(RENDER_SOURCE, options=options, cache=cache)
        cold_series.append(time.perf_counter() - start)
        start = time.perf_counter()
        warm = pipeline_compile(RENDER_SOURCE, options=options, cache=cache)
        warm_series.append(time.perf_counter() - start)
        assert not cold.cache_hit
        assert warm.cache_hit
        assert warm.fused is cold.fused

    cold_ms = [s * 1e3 for s in cold_series]
    warm_ms = [s * 1e3 for s in warm_series]
    marker = "Pipeline compile time"
    text = (
        f"{marker} (render program, cold vs warm cache, "
        f"{COMPILE_ROUNDS} rounds)\n"
        f"cold (fresh cache): {' '.join(f'{v:.1f}' for v in cold_ms)} ms; "
        f"min {min(cold_ms):.1f} ms\n"
        f"warm (cache hit):   {' '.join(f'{v:.3f}' for v in warm_ms)} ms; "
        f"min {min(warm_ms):.3f} ms\n"
        f"speedup (min/min):  {min(cold_ms) / min(warm_ms):.0f}x"
    )
    print()
    print(text)
    # a warm compile must be measurably faster than a cold one
    assert min(warm_series) * 5 < min(cold_series)
    _write_section(results_dir, marker, text)
