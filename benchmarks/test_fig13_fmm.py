"""Fig. 13 — FMM traversals across particle counts.

Paper shape: the two downward passes fuse fully; gains are modest
(runtime 0.78-0.92, instructions slightly below 1) and grow with input
size."""

from repro.bench.experiments import fig13_fmm
from repro.bench.metrics import measure_run
from repro.bench.runner import fused_for
from repro.workloads.fmm import (
    FMM_DEFAULT_GLOBALS,
    build_fmm_tree,
    fmm_program,
    random_particles,
)

SIZES = (1_000, 4_000, 16_000)


def test_fig13_series(report, benchmark):
    text, data = fig13_fmm(sizes=SIZES, cache_scale=64)
    report("fig13_fmm", text)
    series = data["series"]
    # two of three passes fuse -> visits 2/3
    assert all(0.6 <= v <= 0.75 for v in series["node_visits"])
    # modest instruction change either way
    assert all(0.85 <= v <= 1.15 for v in series["instructions"])
    # runtime improves, more for larger inputs
    assert series["runtime"][-1] <= 0.95
    assert series["runtime"][-1] <= series["runtime"][0] + 0.05
    program = fmm_program()
    fused = fused_for(program)
    particles = random_particles(4_000)
    benchmark.pedantic(
        lambda: measure_run(
            program,
            lambda p, h: build_fmm_tree(p, h, particles),
            FMM_DEFAULT_GLOBALS,
            fused=fused,
        ),
        rounds=3, iterations=1,
    )
