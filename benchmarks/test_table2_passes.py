"""Table 2 — the render-tree and AST pass inventories."""

from repro.bench.experiments import table2_passes
from repro.fusion import fuse_program
from repro.workloads.astlang import ast_program


def test_table2(report, benchmark):
    text, rows = table2_passes()
    report("table2_passes", text)
    render_passes = [row[0] for row in rows if row[0]]
    ast_passes = [row[1] for row in rows if row[1]]
    assert len(render_passes) == 5
    assert len(ast_passes) == 6
    assert "replaceVarRefs" in ast_passes
    # time AST fusion (the biggest synthesis job in the suite)
    program = ast_program()
    benchmark.pedantic(lambda: fuse_program(program), rounds=1, iterations=1)
