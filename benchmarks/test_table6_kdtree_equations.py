"""Table 6 — the three equation schedules on a deep kd-tree.

Paper (depth 20; ours scaled down): runtime 0.66/0.49/0.88, node visits
0.17/0.20/0.33 — every schedule fuses substantially, each differently.
"""

from repro.bench.experiments import table6_kdtree_equations
from repro.bench.metrics import measure_run
from repro.bench.runner import fused_for
from repro.workloads.kdtree import (
    EQ2_SCHEDULE,
    KD_DEFAULT_GLOBALS,
    build_balanced_tree,
    equation_program,
)


def test_table6(report, benchmark):
    text, data = table6_kdtree_equations(depth=10, cache_scale=64)
    report("table6_kdtree_equations", text)
    for label, normalized in data.items():
        assert normalized["node_visits"] <= 0.6, label
        assert normalized["runtime"] <= 1.0, label
    program = equation_program(EQ2_SCHEDULE, "eq2-bench")
    fused = fused_for(program)
    benchmark.pedantic(
        lambda: measure_run(
            program,
            lambda p, h: build_balanced_tree(p, h, depth=9),
            KD_DEFAULT_GLOBALS,
            fused=fused,
        ),
        rounds=3, iterations=1,
    )
