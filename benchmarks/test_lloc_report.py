"""§5.1 programmability report: many small functions vs one per traversal."""

from repro.bench.experiments import lloc_report
from repro.bench.metrics import measure_run
from repro.workloads.render import build_document, render_program, replicated_pages_spec
from repro.workloads.render.schema import DEFAULT_GLOBALS


def test_lloc(report, benchmark):
    text, data = lloc_report()
    report("lloc_report", text)
    # paper: ~55 simple functions in Grafter vs one per traversal (5)
    assert data["grafter_functions"] >= 55
    assert data["treefuser_functions"] == 5
    program = render_program()
    spec = replicated_pages_spec(8)
    benchmark.pedantic(
        lambda: measure_run(
            program, lambda p, h: build_document(p, h, spec), DEFAULT_GLOBALS
        ),
        rounds=3, iterations=1,
    )
